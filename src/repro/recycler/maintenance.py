"""Cost-aware background maintenance for a recycler (paper Section II).

The paper notes the recycler graph "has to be truncated periodically,
e.g. by periodically removing subtrees that have not been accessed for
some time".  The :class:`MaintenanceManager` is that caller — a daemon
thread owned by :class:`~repro.db.Database` that wakes on a configurable
cadence — but its cycles are **scheduled and bounded by cost**, not by
blunt thresholds alone:

* **Activity signal** — an :class:`ActivityTracker` keeps an EWMA of
  inter-query gaps, fed by ``Database.sql``/``execute`` and
  ``Session.execute`` (the facade layer, so the signal reflects real
  client traffic).  A cycle predicts an idle window when the current
  gap exceeds ``maintenance_idle_gap_factor`` × the EWMA gap and spends
  its budget there, instead of waiting out the coarse
  ``maintenance_idle_seconds`` threshold.
* **Budget** — each cycle spends at most
  ``maintenance_budget_bytes`` of reclaimed graph bookkeeping and
  ``maintenance_budget_seconds`` of wall clock; work left at the cut
  carries over to the next cycle
  (``stats.budget_exhausted_cycles`` counts the cuts).  With
  ``maintenance_hit_rate_budget_factor`` set, the byte budget scales
  with the cache hit rate observed since the previous cycle: a cold
  window (no reuses) is mostly dead bookkeeping, so the cycle may spend
  up to ``1 + factor`` × the base budget clearing it, while a hot cache
  keeps the base budget.
* **Victim ordering** — budgeted truncation drains idle subtrees
  *lowest benefit-per-byte first* (Eq. 1 via the shared
  :class:`~repro.recycler.benefit.BenefitModel`) rather than by idle
  age alone, so whatever the budget buys is the least valuable
  bookkeeping.
* **Version-dead GC** — every cycle first sweeps graph subtrees whose
  incarnation stamps a ``drop_table``/re-register left permanently
  behind the live catalog
  (:meth:`~repro.recycler.recycler.Recycler.collect_version_dead`),
  with in-flight pinning; dead nodes are unmatchable by any new
  snapshot, so they are collected regardless of benefit or idle age
  and do not count against the byte budget.

The classic triggers remain: *size* (graph outgrew
``maintenance_graph_node_limit``) and *idle*
(``maintenance_idle_seconds`` of silence, which also refreshes cached
benefits against the aged clock).

``Database.close()`` (or the manager's :meth:`stop`) shuts the thread
down cleanly; :meth:`run_once` applies one cycle synchronously for
deterministic tests and for deployments that prefer an external cron.

Shutdown is cooperative all the way down: a cycle in progress folds the
manager's stop flag (and its time budget) into the ``stop`` hooks of
:meth:`Recycler.truncate_budgeted` / :meth:`Recycler.collect_version_dead`
/ :meth:`RecyclerCache.refresh_all`, which consult it at their phase
boundaries — so ``stop()`` returns promptly instead of waiting out a
large sweep, mirroring the query-side
:class:`~repro.engine.cancellation.CancellationToken`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable

from .recycler import Recycler


def _never_stop() -> bool:
    return False


class ActivityTracker:
    """EWMA of inter-query gaps — the maintenance scheduler's traffic
    signal.

    ``note_query`` is called by the facade layer (``Database.sql`` /
    ``Database.execute`` / ``Session.execute``) on every query start;
    :meth:`predicts_idle` answers whether the *current* silence already
    exceeds ``factor`` × the typical gap — i.e. the stream has likely
    paused and a maintenance cycle can spend its budget without
    competing with queries.  Thread-safe (queries arrive from every
    session thread); timestamps are ``time.monotonic`` unless a test
    passes its own clock.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        #: monotonic timestamp of the most recent query (None = never).
        self.last_query: float | None = None
        #: EWMA of inter-query gaps in seconds (None until two queries).
        self.ewma_gap: float | None = None
        self.queries = 0

    def note_query(self, now: float | None = None) -> None:
        """Record one query arrival and fold its gap into the EWMA."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.last_query is not None:
                gap = max(now - self.last_query, 0.0)
                self.ewma_gap = gap if self.ewma_gap is None else \
                    (1.0 - self.alpha) * self.ewma_gap + self.alpha * gap
            self.last_query = now
            self.queries += 1

    def current_gap(self, now: float | None = None) -> float | None:
        """Seconds since the last query (None when none was seen)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.last_query is None:
                return None
            return max(now - self.last_query, 0.0)

    def predicts_idle(self, now: float | None = None,
                      factor: float = 8.0,
                      floor: float = 0.0) -> bool:
        """True when the current gap already exceeds ``factor`` × the
        EWMA gap — the stream has likely paused.  Conservatively False
        until at least one gap was observed.  ``floor`` is an absolute
        lower bound on the threshold: a back-to-back burst drives the
        EWMA gap toward zero, and without the floor *any* instant would
        count as idle — maintenance would grab the rewrite stripes in
        the middle of peak traffic."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self.last_query is None or self.ewma_gap is None:
                return False
            threshold = max(factor * self.ewma_gap, floor)
            return now - self.last_query >= threshold


@dataclass
class MaintenanceStats:
    """Counters for observability and tests (surfaced under the
    ``"maintenance"`` key of ``Database.summary()``)."""

    cycles: int = 0
    size_triggers: int = 0
    idle_triggers: int = 0
    #: cycles the EWMA activity signal predicted an idle window before
    #: the coarse idle threshold would have fired.
    predicted_idle_triggers: int = 0
    #: truncations that actually removed nodes (a trigger may fire and
    #: find nothing idle enough; that is not a run).
    truncate_runs: int = 0
    nodes_truncated: int = 0
    #: summed result-size annotations of truncated nodes — the
    #: bookkeeping volume maintenance reclaimed from the graph.
    bytes_reclaimed: int = 0
    #: version-dead subtrees swept by GC (drop/re-register made their
    #: incarnation stamps permanently unmatchable).
    gc_nodes_collected: int = 0
    #: cycles cut short by the byte or time budget with eligible work
    #: remaining (it carries over to the next cycle).
    budget_exhausted_cycles: int = 0
    benefits_refreshed: int = 0
    last_cycle_at: float = field(default=0.0, repr=False)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (``last_cycle_at`` excluded: monotonic
        timestamps mean nothing outside the process)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "last_cycle_at"}


class MaintenanceManager:
    """Cost-aware truncate/GC/refresh driver for one recycler."""

    def __init__(self, recycler: Recycler,
                 activity: ActivityTracker | None = None) -> None:
        self.recycler = recycler
        self.config = recycler.config
        self.stats = MaintenanceStats()
        #: the EWMA traffic signal; the :class:`~repro.db.Database`
        #: facade and every :class:`~repro.session.Session` feed it.
        self.activity = activity if activity is not None else \
            ActivityTracker(alpha=self.config.activity_ewma_alpha)
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        #: (queries, reuses) high-water marks of the previous cycle —
        #: the hit-rate feedback window is per-cycle deltas.
        self._feedback_marks = (0, 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the background thread (no-op when already running or
        when no interval is configured)."""
        if self.config.maintenance_interval_seconds is None:
            return
        with self._lock:
            if self.running:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-maintenance", daemon=True)
            self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        """Signal the thread and join it (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        self._wakeup.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def wake(self) -> None:
        """Nudge the thread to run a cycle now (tests, pressure hooks)."""
        self._wakeup.set()

    def _loop(self) -> None:
        interval = self.config.maintenance_interval_seconds
        while not self._stop.is_set():
            self._wakeup.wait(interval)
            self._wakeup.clear()
            if self._stop.is_set():
                return
            self.run_once(stop=self._stop.is_set)

    # ------------------------------------------------------------------
    # one cycle
    # ------------------------------------------------------------------
    def _budget_with_feedback(self) -> tuple[int | None, float | None]:
        """The cycle's byte budget, scaled by cache hit-rate feedback.

        Hit rate is reuses-per-query over the window since the previous
        cycle (clamped to [0, 1] — subsumption can reuse several entries
        for one query).  A cold window scales the budget up to
        ``1 + factor`` × the base: entries nobody reuses are dead
        bookkeeping and worth spending more of the cycle clearing.  A
        window with no queries (or feedback disabled) keeps the base
        budget and reports no rate.
        """
        config = self.config
        base = config.maintenance_budget_bytes
        queries = self.activity.queries
        reuses = self.recycler.cache.counters.reuses
        last_queries, last_reuses = self._feedback_marks
        self._feedback_marks = (queries, reuses)
        factor = config.maintenance_hit_rate_budget_factor
        if factor is None or base is None:
            return base, None
        query_delta = queries - last_queries
        if query_delta <= 0:
            return base, None
        hit_rate = min(max((reuses - last_reuses) / query_delta, 0.0),
                       1.0)
        return int(base * (1.0 + factor * (1.0 - hit_rate))), hit_rate

    def run_once(self, now: float | None = None,
                 stop: Callable[[], bool] | None = None
                 ) -> dict[str, float]:
        """Spend one budgeted maintenance cycle; returns what fired.

        The cycle runs, in order: (1) version-dead GC — dead subtrees
        are pure waste, so they go first and skip the byte budget;
        (2) the *size* trigger — budgeted, benefit-per-byte-ordered
        truncation when the graph outgrew its node limit; (3) the
        *idle* triggers — the coarse ``maintenance_idle_seconds``
        threshold **or** the EWMA-predicted idle window — budgeted
        truncation plus a cached-benefit refresh.  Every phase consults
        the combined stop hook (external ``stop`` + the cycle's time
        budget), and a byte budget left over from the size trigger is
        what the idle truncation may still spend.

        Safe from any thread (truncation takes every rewrite stripe);
        callable directly even when the background thread is disabled.
        ``stop`` is the cooperative-shutdown hook: the background loop
        passes its stop flag so a cycle in progress abandons promptly
        when the thread is told to exit.  Synchronous callers
        (``Database.maintain()``) omit it — explicit maintenance keeps
        working after ``Database.close()``.  ``now`` overrides the
        trigger clock for deterministic tests; the *time budget* always
        runs on the real clock.
        """
        now = time.monotonic() if now is None else now
        recycler = self.recycler
        config = self.config
        stopping = stop if stop is not None else _never_stop
        deadline = None if config.maintenance_budget_seconds is None \
            else time.monotonic() + config.maintenance_budget_seconds

        def over_time() -> bool:
            return deadline is not None and time.monotonic() >= deadline

        def cut_short() -> bool:
            return stopping() or over_time()

        truncate_stats: dict[str, int] = {}
        removed = 0
        truncate_runs = 0
        refreshed = 0
        gc_removed = 0
        size_fired = False
        idle_fired = False
        predicted_fired = False
        exhausted = False
        bytes_left, hit_rate = self._budget_with_feedback()
        bytes_left_initial = bytes_left

        def budgeted_truncate() -> None:
            nonlocal removed, truncate_runs, exhausted, bytes_left
            before = truncate_stats.get("bytes_reclaimed", 0)
            run_removed, run_exhausted = recycler.truncate_budgeted(
                budget_bytes=bytes_left, stop=cut_short,
                stats=truncate_stats)
            removed += run_removed
            truncate_runs += int(run_removed > 0)
            exhausted = exhausted or run_exhausted
            spent = truncate_stats.get("bytes_reclaimed", 0) - before
            if bytes_left is not None:
                bytes_left = max(bytes_left - spent, 0)

        # Phase 1 — version-dead GC.  Unconditional and un-byte-budgeted:
        # a dead subtree can never be matched again, so collecting it is
        # pure win whatever its benefit annotations claim.
        if not stopping():
            gc_removed = recycler.collect_version_dead(
                stop=cut_short, stats=truncate_stats)

        # Phase 2 — size pressure overrides idle prediction: the graph
        # is too big *now*.
        limit = config.maintenance_graph_node_limit
        if limit is not None and len(recycler.graph.nodes) > limit \
                and not cut_short():
            size_fired = True
            budgeted_truncate()

        # Phase 3 — idle window: the coarse threshold, or the EWMA
        # signal predicting the stream has paused.
        idle_after = config.maintenance_idle_seconds
        genuinely_idle = idle_after is not None and \
            now - recycler.last_activity >= idle_after
        factor = config.maintenance_idle_gap_factor
        predicted_fired = not genuinely_idle and factor is not None and \
            self.activity.predicts_idle(
                now, factor,
                floor=config.maintenance_idle_gap_floor_seconds)
        if (genuinely_idle or predicted_fired) and not cut_short():
            idle_fired = genuinely_idle
            budgeted_truncate()
            if not cut_short():
                refreshed = recycler.refresh_cached_benefits(
                    stop=cut_short)

        with self._lock:
            # the background thread and Database.maintain() callers may
            # cycle concurrently; keep the counters' read-modify-writes
            # atomic
            self.stats.cycles += 1
            self.stats.size_triggers += int(size_fired)
            self.stats.idle_triggers += int(idle_fired)
            self.stats.predicted_idle_triggers += int(predicted_fired)
            self.stats.truncate_runs += truncate_runs
            self.stats.nodes_truncated += removed
            self.stats.bytes_reclaimed += \
                truncate_stats.get("bytes_reclaimed", 0)
            self.stats.gc_nodes_collected += gc_removed
            self.stats.budget_exhausted_cycles += int(exhausted)
            self.stats.benefits_refreshed += refreshed
            self.stats.last_cycle_at = now
        outcome: dict[str, float] = {
            "size_trigger": int(size_fired),
            "idle_trigger": int(idle_fired),
            "predicted_idle_trigger": int(predicted_fired),
            "nodes_truncated": removed,
            "gc_nodes_collected": gc_removed,
            "budget_exhausted": int(exhausted),
            "benefits_refreshed": refreshed}
        if hit_rate is not None:
            outcome["hit_rate"] = hit_rate
            outcome["budget_bytes"] = bytes_left_initial
        return outcome
