"""The recycler facade (paper Figure 1).

``Recycler.prepare`` runs the full rewrite pipeline on an optimized query
plan — proactive rewriting (PA mode), Algorithm-1 matching/insertion,
reference bookkeeping, reuse substitution (with subsumption), and store
planning — returning a :class:`PreparedQuery`.  ``Recycler.execute`` then
runs the plan and ``finalize`` writes measured statistics back into the
recycler graph.  Store completion callbacks admit results to the cache
mid-execution, exactly as the paper's store operators do.

Concurrency (Section V): the recycler serves many sessions at once.
The rewrite and finalize critical sections take a *lock stripe* keyed
by the query's plan fingerprint (root anchor hash), so identical plans
serialize while disjoint subgraphs rewrite in parallel
(:mod:`.striping`); Algorithm-1 matching runs outside any stripe,
relying on the graph's optimistic insertion (``ConcurrencyConflict`` +
re-match) so concurrent sessions never duplicate graph nodes.  With
``block_on_inflight`` a query that matches a node some concurrent query
is currently producing genuinely waits — holding no locks — for the
producer's store to complete and then reuses the materialized entry
("the recycler stalls all but one").  Execution never holds recycler
locks; store callbacks admit results through the cache's reserve-then-
publish fast path without touching any stripe.  Maintenance
(:meth:`Recycler.truncate_idle`, driven by the
:class:`~repro.recycler.maintenance.MaintenanceManager`) briefly takes
*every* stripe so in-flight pins are a complete snapshot.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..columnar.catalog import Catalog, CatalogSnapshot
from ..columnar.table import Table
from ..engine.base import PhysicalOperator
from ..engine.cancellation import CancellationToken
from ..engine.cost import DEFAULT_COST_MODEL, CostModel
from ..engine.executor import ExecutionStats, QueryResult
from ..engine.scan import ReuseScanOp
from ..engine.store import StoreOp, StoreStats
from ..exec_service import ExecutionService
from ..plan.logical import PlanNode
from ..plan.optimizer import PlanOptimizer
from .benefit import BenefitModel
from .cache import RecyclerCache
from .config import MODE_OFF, RecyclerConfig
from .graph import GraphNode, RecyclerGraph
from .inflight import InFlightRegistry
from .matching import MatchResult, match_tree
from .proactive import ProactiveRewriter
from .rewriter import (ReuseInfo, StorePlanner, substitute_reuse)
from .striping import LockStripes, plan_fingerprint
from .subsumption import SubsumptionIndex


@dataclass
class PreparedQuery:
    """Everything the rewrite phase decided about one query."""

    query_id: int
    original_plan: PlanNode
    executed_plan: PlanNode
    matches: MatchResult | None
    producer_token: object = None
    #: the catalog snapshot this query resolves against end to end —
    #: pinned on entry to ``prepare``, consulted by execution (scan
    #: operators) and by store admission (version tags).
    snapshot: CatalogSnapshot | None = None
    #: stripe key of ``original_plan`` (computed once; finalize reuses
    #: it to take the same stripe prepare rewrote under).
    fingerprint: tuple | None = None
    stores: dict[int, object] = field(default_factory=dict)
    reuses: list[ReuseInfo] = field(default_factory=list)
    #: graph nodes this query would reuse/produce that a concurrent query
    #: is currently producing — the virtual-time harness stalls on these;
    #: real sessions block on them (``block_on_inflight``).
    stalls: list[GraphNode] = field(default_factory=list)
    #: wall-clock seconds actually spent blocked on in-flight producers.
    stall_seconds: float = 0.0
    matching_seconds: float = 0.0
    proactive_strategies: list[str] = field(default_factory=list)
    proactive_executed: bool = False


@dataclass
class QueryRecord:
    """Per-query log entry kept by the recycler (figures, tests)."""

    query_id: int
    label: str
    total_cost: float
    wall_seconds: float
    matching_seconds: float
    num_reused: int
    num_stores_injected: int
    num_materialized: int
    graph_nodes: int
    proactive: tuple[str, ...] = ()
    stall_seconds: float = 0.0
    #: Algorithm-1 outcome: plan nodes that unified with an existing
    #: graph node vs. nodes inserted fresh — the recycler's match rate
    #: (``summary()["optimizer"]["match_rate"]``) aggregates these.
    num_matched: int = 0
    num_inserted: int = 0


class Recycler:
    """Recycling for pipelined query evaluation."""

    def __init__(self, catalog: Catalog,
                 config: RecyclerConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 vector_size: int = 1024) -> None:
        self.catalog = catalog
        self.config = config or RecyclerConfig()
        self.cost_model = cost_model
        self.vector_size = vector_size
        self.graph = RecyclerGraph(catalog, alpha=self.config.alpha)
        self.model = BenefitModel(self.graph,
                                  speculation_h=self.config.speculation_h)
        self.cache = RecyclerCache(
            self.model, capacity=self.config.cache_capacity,
            scan_all_groups=self.config.replacement_scan_all_groups,
            live_versions=catalog.versions_for)
        self.subsumption = SubsumptionIndex(self.graph) \
            if self.config.subsumption else None
        self.inflight = InFlightRegistry()
        self.proactive = ProactiveRewriter(catalog, self.config)
        #: the canonicalizing pre-match pass (``config.optimize_plans``);
        #: stateless — per-query rewrite counts aggregate into
        #: ``_optimizer_counts`` under ``_optimizer_lock``.
        self.optimizer = PlanOptimizer()
        self._optimizer_counts: Counter = Counter()
        self._optimizer_lock = threading.Lock()
        self.store_planner = StorePlanner(self.graph, self.model,
                                          self.cache, self.inflight,
                                          self.config,
                                          cost_model=cost_model)
        self.records: list[QueryRecord] = []
        self._query_counter = 0
        #: striped locks for the rewrite/finalize critical sections:
        #: stripe = hash(plan fingerprint) % n, so disjoint plan shapes
        #: never contend.  ``lock_stripes=1`` is the coarse-lock
        #: baseline.  Matching, execution, and store callbacks run
        #: outside every stripe.
        self._stripes = LockStripes(self.config.lock_stripes)
        self._id_lock = threading.Lock()
        self._records_lock = threading.Lock()
        #: DDL observability: invalidation sweeps, entries they evicted,
        #: and in-flight producers they aborted (mutated under all
        #: stripes, read anywhere).
        self.ddl_stats = {"invalidations": 0, "entries_evicted": 0,
                          "inflight_aborted": 0}
        #: monotonic timestamp of the last query activity — the
        #: maintenance idle trigger reads it.
        self.last_activity = time.monotonic()
        #: the one canonical prepare→execute→record pipeline.  Every
        #: frontend — ``Database``, sessions, the DB-API, the server —
        #: shares this instance (``Database`` attaches its activity
        #: tracker); :meth:`execute` delegates to it, so a standalone
        #: recycler keeps its historical surface.
        self.service = ExecutionService(self)

    # ------------------------------------------------------------------
    # the rewrite phase
    # ------------------------------------------------------------------
    def prepare(self, plan: PlanNode,
                producer_token: object | None = None,
                block_on_inflight: bool = False,
                cancel_token: CancellationToken | None = None,
                snapshot: CatalogSnapshot | None = None,
                tenant: str | None = None) -> PreparedQuery:
        """Run the full rewrite pipeline for one optimized query plan.

        With ``block_on_inflight`` the calling thread stalls — before the
        rewrite critical section, holding no locks — on every matched
        node a concurrent query is currently producing, then reuses the
        materialized entries the producers left behind.

        ``cancel_token`` makes the rewrite phase abortable: the token is
        checked on entry and after every in-flight wait (whose timeout
        it also bounds, so a deadline fires even while stalled).  No
        check runs after store planning — once registrations exist, only
        ``execute``'s abandon path may unwind, so an abort can never
        leak a registration out of ``prepare``.

        ``snapshot`` is the query's pinned catalog view (one is captured
        here when the caller did not pin earlier, e.g. around SQL
        binding): the proactive rules, matching, reuse substitution, and
        store planning all resolve against it, and the admission
        callbacks tag the produced entries with its versions.

        ``tenant`` attributes whatever this query materializes to a
        per-tenant cache byte budget (:meth:`set_tenant_budget`): the
        admission callbacks carry it into
        :meth:`~repro.recycler.cache.RecyclerCache.admit`, which rejects
        publications that would push the tenant past its budget.
        """
        if cancel_token is not None:
            cancel_token.check()
        if snapshot is None:
            snapshot = self.catalog.snapshot()
        with self._id_lock:
            self._query_counter += 1
            query_id = self._query_counter
        token = producer_token if producer_token is not None else query_id

        # Canonicalize *before* fingerprinting, stripe selection, and
        # matching (and before the mode check, so every mode executes
        # the same shapes): all plans in a semantic equivalence class
        # collapse onto one graph subtree and one cached entry.
        if self.config.optimize_plans:
            plan, rewrites = self.optimizer.optimize(plan, snapshot)
            if rewrites:
                with self._optimizer_lock:
                    self._optimizer_counts.update(rewrites)

        if self.config.mode == MODE_OFF:
            return PreparedQuery(query_id=query_id, original_plan=plan,
                                 executed_plan=plan, matches=None,
                                 producer_token=token, snapshot=snapshot)

        self.last_activity = time.monotonic()
        fingerprint = plan_fingerprint(plan)
        stripe = self._stripes.for_key(fingerprint)
        self.graph.tick()

        plan_to_match = plan
        strategies: list[str] = []
        anchors: list[PlanNode] = []
        if self.config.proactive_enabled:
            proactive = self.proactive.apply(plan, catalog=snapshot)
            if proactive.applications:
                plan_to_match = proactive.plan
                strategies = [a.strategy for a in proactive.applications]
                anchors = [a.anchor for a in proactive.applications
                           if a.anchor is not None]

        # Phase 1 — Algorithm-1 matching, lock-free: concurrent inserts
        # are caught by the graph's optimistic validation and re-matched.
        started = time.perf_counter()
        hook = self.subsumption.on_insert if self.subsumption else None
        matches = match_tree(plan_to_match, self.graph, snapshot,
                             query_id, subsumption_hook=hook)
        matching_seconds = time.perf_counter() - started

        # Phase 2 — steering + reference bookkeeping (mutates hR).
        with stripe:
            executed_plan = plan_to_match
            proactive_executed = bool(strategies)
            credited: list[GraphNode] = []
            if strategies and self.config.proactive_benefit_steered:
                # Reference the proactive variant first — each trigger
                # raises the benefit of its common parts (paper Section
                # IV-B) — then decide whether to actually execute it.
                credited = self.model.record_query_references(
                    plan_to_match, matches)
                if not self._steering_accepts(matches, anchors):
                    started2 = time.perf_counter()
                    matches = match_tree(plan, self.graph, snapshot,
                                         query_id, subsumption_hook=hook)
                    matching_seconds += time.perf_counter() - started2
                    executed_plan = plan
                    proactive_executed = False
                    credited += self.model.record_query_references(
                        plan, matches)
            matched_plan = executed_plan

            if not credited:
                credited = self.model.record_query_references(
                    matched_plan, matches)
            for node in credited:
                if node.is_materialized:
                    self.cache.refresh(node)

        # Phase 3 — in-flight sharing.  Collect the matched nodes some
        # concurrent query is producing; when blocking, wait (lock-free)
        # for each producer's store to complete or abort.
        stalls = self._collect_stalls(matched_plan, matches, token)
        stall_seconds = 0.0
        if block_on_inflight:
            for node in stalls:
                timeout = self.config.inflight_wait_timeout
                if cancel_token is not None:
                    # A deadline must fire even while stalled on a
                    # producer; a cancel wakes the wait via
                    # ``inflight.cancel`` and is re-raised here.
                    timeout = cancel_token.bound_timeout(timeout)
                stall_seconds += self.inflight.wait_for(
                    node, token, timeout=timeout)
                if cancel_token is not None:
                    cancel_token.check()

        # Phase 4 — reuse substitution + store planning; entries admitted
        # by awaited producers are picked up here as ordinary reuses.
        # The callbacks carry the producer token so completion releases
        # only this query's own registrations (owner-checked).
        with stripe:
            outcome = substitute_reuse(matched_plan, matches, self.graph,
                                       self.cache, self.subsumption,
                                       self.config, snapshot,
                                       cost_model=self.cost_model
                                       if self.config.optimize_plans
                                       else None)
            if outcome.cost_skips:
                with self._optimizer_lock:
                    self._optimizer_counts["reuse_cost_skips"] += \
                        outcome.cost_skips
            store_plan = self.store_planner.plan_stores(
                outcome.plan, matches, token,
                on_complete=lambda table, stats, node, _t=token,
                _s=snapshot, _tn=tenant:
                    self._on_store_complete(table, stats, node, _t, _s,
                                            _tn),
                on_abort=lambda node, _t=token:
                    self._on_store_abort(node, _t),
                snapshot=snapshot)

        return PreparedQuery(
            query_id=query_id, original_plan=plan,
            executed_plan=outcome.plan, matches=matches,
            producer_token=token, fingerprint=fingerprint,
            snapshot=snapshot,
            stores=store_plan.requests, reuses=outcome.reuses,
            stalls=stalls, stall_seconds=stall_seconds,
            matching_seconds=matching_seconds,
            proactive_strategies=strategies,
            proactive_executed=proactive_executed)

    def _steering_accepts(self, matches: MatchResult,
                          anchors: list[PlanNode]) -> bool:
        """Benefit-steered proactive execution: run the expensive variant
        only once its shared anchor is cached or recurring."""
        for anchor in anchors:
            if not matches.contains(anchor):
                continue
            node = matches.of(anchor).graph_node
            if node.is_materialized:
                return True
            if self.graph.effective_refs(node) >= \
                    self.config.store_min_refs:
                return True
        return not anchors  # no anchors -> nothing to steer on

    def _collect_stalls(self, plan: PlanNode, matches: MatchResult,
                        token: object) -> list[GraphNode]:
        stalls: list[GraphNode] = []
        seen: set[int] = set()
        for node in plan.walk():
            if not matches.contains(node):
                continue
            graph_node = matches.of(node).graph_node
            if graph_node.node_id in seen:
                continue
            seen.add(graph_node.node_id)
            producer = self.inflight.producer_of(graph_node)
            if producer is not None and producer != token and \
                    graph_node.entry is None:
                stalls.append(graph_node)
        return stalls

    # ------------------------------------------------------------------
    # execution + finalize
    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode, label: str = "",
                producer_token: object | None = None,
                block_on_inflight: bool = False,
                cancel_token: CancellationToken | None = None,
                snapshot: CatalogSnapshot | None = None,
                remote: object | None = None,
                tenant: str | None = None) -> QueryResult:
        """Prepare, execute, and finalize one query — a thin delegate to
        the shared :class:`~repro.exec_service.ExecutionService`
        pipeline (``self.service``), kept for callers that drive a
        recycler directly.

        ``cancel_token`` (see :mod:`repro.engine.cancellation`) makes
        the whole pipeline abortable: cancelled or past-deadline queries
        raise :class:`~repro.errors.QueryCancelled` /
        :class:`~repro.errors.QueryTimeout` within one batch boundary,
        and the abandon path retires the producer token — its in-flight
        registrations are released (waking stalled consumers) and no
        cache entry is published.

        ``snapshot`` pins the catalog view for the whole query (captured
        in ``prepare`` otherwise); scan operators resolve tables against
        it, so a concurrent ``register_table``/``drop_table`` never
        changes what a running query reads.

        ``remote`` is an optional :class:`~repro.engine.shard.pool.
        ShardRuntime`: when the prepared query is *cold* (no reuse
        substitutions, only shared-table scans at the shared versions),
        execution fans out to a worker process and only the rewrite and
        admission phases run here — the recycler stays authoritative.
        Warm or ineligible queries, and queries racing a runtime
        shutdown, run locally as if ``remote`` were None.
        """
        return self.service.execute(
            plan, frontend="recycler", label=label,
            producer_token=producer_token,
            block_on_inflight=block_on_inflight,
            cancel_token=cancel_token, snapshot=snapshot, remote=remote,
            tenant=tenant, validate=False)

    def _admit_remote_stores(self, prepared: PreparedQuery,
                             outcome) -> int:
        """Replay store decisions for a remotely executed query.

        The worker materializes every planned store unconditionally
        (it has no benefit model); the parent replays each request here
        with the *exact* measured numbers — the same end-of-stream
        exact decision a local ``StoreOp`` makes — so speculative
        stores still go through ``decide`` and rejected results release
        their in-flight registrations without touching the cache."""
        from ..engine.store import MODE_SPECULATE, SpeculationEstimate
        nodes = list(prepared.executed_plan.walk())
        admitted = 0
        for position, table, sstats in outcome.stores:
            request = prepared.stores.get(id(nodes[position]))
            if request is None:  # pragma: no cover - defensive
                continue
            if request.mode == MODE_SPECULATE:
                estimate = SpeculationEstimate(
                    est_cost=sstats.measured_cost,
                    est_size_bytes=sstats.size_bytes,
                    est_rows=sstats.rows, progress=1.0, exact=True)
                decide = request.decide
                if not (decide and decide(estimate, request.tag)):
                    if request.on_abort is not None:
                        request.on_abort(request.tag)
                    continue
            if request.on_complete is not None:
                request.on_complete(table, sstats, request.tag)
                admitted += 1
        return admitted

    def finalize(self, prepared: PreparedQuery, stats: ExecutionStats,
                 label: str = "") -> QueryRecord:
        """Annotate the recycler graph with measured statistics and log
        the query (paper: 'after the query has been executed, each
        operator annotates its equivalent node in the recycler graph')."""
        fingerprint = prepared.fingerprint if prepared.fingerprint \
            is not None else plan_fingerprint(prepared.original_plan)
        stripe = self._stripes.for_key(fingerprint)
        self.last_activity = time.monotonic()
        with stripe:
            if prepared.matches is not None:
                if stats.physical_root is not None:
                    self._annotate(stats.physical_root, prepared.matches)
                elif stats.remote and stats.node_stats:
                    self._annotate_remote(prepared, stats)
            self.inflight.release_all(prepared.producer_token)
        record = QueryRecord(
            query_id=prepared.query_id, label=label,
            total_cost=stats.total_cost,
            wall_seconds=stats.wall_seconds,
            matching_seconds=prepared.matching_seconds,
            num_reused=len(prepared.reuses),
            num_stores_injected=len(prepared.stores),
            num_materialized=stats.num_stored,
            graph_nodes=len(self.graph.nodes),
            proactive=tuple(prepared.proactive_strategies),
            stall_seconds=prepared.stall_seconds,
            num_matched=prepared.matches.matched_count
            if prepared.matches is not None else 0,
            num_inserted=prepared.matches.inserted_count
            if prepared.matches is not None else 0)
        with self._records_lock:
            self.records.append(record)
        return record

    def abandon(self, prepared: PreparedQuery) -> None:
        """A prepared query will never finalize (execution failed): drop
        its in-flight registrations so stalled queries wake up instead of
        waiting for a store that will never complete.  The token is
        retired — a store racing to register under it afterwards is
        refused, so an abandoned query can never leave a stale entry."""
        self.cancel(prepared.producer_token)

    def cancel(self, token: object) -> list[int]:
        """Abandon ``token``'s query from *any* thread — even while it is
        blocked waiting on an in-flight producer (pool shutdown
        mid-query).  Wakes the waiter, drops the token's registrations,
        and refuses registrations it would plant afterwards (its
        producer may already have finalized, in which case the consumer
        is past waiting and busy planning stores).  Tokens are
        per-query unique; a cancelled token stays retired."""
        return self.inflight.cancel(token)

    def _annotate(self, op: PhysicalOperator,
                  matches: MatchResult) -> float:
        """Post-order walk computing each operator's *base* cost: reuse
        scans contribute the cached node's stored base cost (undoing
        Eq. 2), store overhead is excluded."""
        if isinstance(op, ReuseScanOp):
            handle = op._handle
            node = getattr(handle, "node", None)
            return node.bcost if node is not None else op.self_cost
        if isinstance(op, StoreOp):
            return self._annotate(op.children[0], matches)
        base = op.self_cost + sum(self._annotate(child, matches)
                                  for child in op.children)
        logical = op.logical
        if logical is not None and op.exhausted and \
                matches.contains(logical):
            graph_node = matches.of(logical).graph_node
            # Atomic under the graph lock: finalizes of different plan
            # shapes (different stripes) may annotate a shared node.
            self.graph.record_execution(graph_node, base, op.rows_out,
                                        op.bytes_out)
        return base

    def _annotate_remote(self, prepared: PreparedQuery,
                         stats: ExecutionStats) -> None:
        """Annotate from shipped per-position statistics instead of a
        physical tree (sharded execution: the operators lived in the
        worker process).  Remote plans are always *cold* — no reuse
        scans, no store overhead inside ``cumulative_cost`` (the
        worker's ``_collect`` already excludes it) — so the shipped
        cumulative cost *is* the base cost Eq. 2 wants."""
        matches = prepared.matches
        for position, node in enumerate(prepared.executed_plan.walk()):
            ns = stats.node_stats.get(position)
            if ns is None or not ns.exhausted:
                continue
            if not matches.contains(node):
                continue
            graph_node = matches.of(node).graph_node
            self.graph.record_execution(graph_node, ns.cumulative_cost,
                                        ns.rows_out, ns.bytes_out)

    # ------------------------------------------------------------------
    # store callbacks
    # ------------------------------------------------------------------
    def _on_store_complete(self, table: Table, stats: StoreStats,
                           graph_node: GraphNode,
                           token: object = None,
                           snapshot: CatalogSnapshot | None = None,
                           tenant: str | None = None) -> None:
        """A store operator finished materializing: reconstruct the base
        cost (measured cost with reuse emissions swapped for the cached
        results' base costs), update the node, admit to the cache.

        Fires mid-execution on the producing session's thread and takes
        **no stripe**: admission goes through the cache's reserve-then-
        publish fast path, so a completing store never queues behind
        another session's rewrite.  The release wakes every session
        stalled on this node.

        ``snapshot`` is the producing query's pinned catalog view: the
        entry is tagged with its versions, and admission rejects the
        publication when a DDL has already moved the live catalog past
        them — the invalidate-then-swap race, closed at its last
        possible point."""
        base_cost = stats.measured_cost
        for handle, emit_cost in stats.reused:
            node = getattr(handle, "node", None)
            if node is not None:
                base_cost += node.bcost - emit_cost
        # Graph-locked: a concurrent finalize of another plan sharing
        # this node annotates the same fields via record_execution.
        self.graph.record_measurement(graph_node, base_cost, stats.rows,
                                      stats.size_bytes)
        # The producing query materialized the table under its own
        # column names; the cache stores results in the graph
        # namespace so any future query (with any aliases) can be
        # renamed onto it.
        to_graph = dict(zip(table.schema.names,
                            graph_node.schema.names))
        versions = (snapshot or self.catalog).versions_for(
            graph_node.tables, graph_node.functions)
        self.cache.admit(graph_node, table.rename(to_graph),
                         table_versions=versions[0],
                         function_versions=versions[1],
                         tenant=tenant)
        self.inflight.release(graph_node, token)

    def _on_store_abort(self, graph_node: GraphNode,
                        token: object = None) -> None:
        """Speculation rejected the result: release any waiters."""
        self.inflight.release(graph_node, token)

    # ------------------------------------------------------------------
    # tenant budgets
    # ------------------------------------------------------------------
    def set_tenant_budget(self, tenant: str,
                          limit_bytes: int | None) -> None:
        """Cap the cache bytes attributable to ``tenant`` (queries run
        with ``tenant=...``): admissions that would push the tenant past
        the cap are rejected (``cache.counters.tenant_rejected``) while
        other tenants keep admitting.  ``None`` removes the cap.
        Eviction credits the bytes back, so a throttled tenant recovers
        headroom as its entries age out."""
        self.cache.set_tenant_budget(tenant, limit_bytes)

    # ------------------------------------------------------------------
    # maintenance entry points
    # ------------------------------------------------------------------
    def flush_cache(self) -> int:
        """Evict everything (simulating update-driven invalidation)."""
        with self._stripes.all():
            return self.cache.flush()

    def invalidate_table(self, table: str) -> int:
        """Evict every cached dependent of ``table`` and abort its
        in-flight producers.

        The abort is the ``on_abort`` release path, applied per node:
        each in-flight registration on a node that reads ``table`` is
        released (owner-checked), which wakes every consumer stalled on
        it — they recompute against their own snapshots instead of
        waiting for (and then rejecting) an old-table result.  The
        producer keeps its registrations on nodes that do *not* read
        ``table`` (their results are still current and admissible), and
        its own query is *not* cancelled — it still returns the answer
        its snapshot owes, while its store publication for stale nodes
        is version-rejected at admission.

        Called by :meth:`~repro.db.Database.register_table` *after* the
        catalog swap-and-bump, so between bump and sweep the version
        tags keep every interleaving safe (see
        :mod:`repro.recycler.cache`)."""
        return self._invalidate(
            lambda node: table.lower() in node.tables,
            lambda: self.cache.invalidate_table(table))

    def invalidate_function(self, function: str) -> int:
        """Evict every cached result derived from ``function`` (and
        abort its in-flight producers) — the table-function counterpart
        of :meth:`invalidate_table`, used when a function is
        re-registered."""
        return self._invalidate(
            lambda node: function.lower() in node.functions,
            lambda: self.cache.invalidate_function(function))

    def _invalidate(self, depends, evict) -> int:
        """One DDL sweep under all stripes: abort in-flight producers
        of ``depends``-matching nodes, then run ``evict`` and record
        the counters."""
        with self._stripes.all():
            aborted = self._abort_inflight_producers(depends)
            evicted = evict()
            self.ddl_stats["invalidations"] += 1
            self.ddl_stats["entries_evicted"] += evicted
            self.ddl_stats["inflight_aborted"] += aborted
            return evicted

    def _abort_inflight_producers(self, depends) -> int:
        """Release the in-flight registration of every node for which
        ``depends(node)`` holds (waking its stalled consumers); returns
        the number of distinct producer tokens affected.

        Caller holds all stripes, so no new registration can be planted
        concurrently (store planning runs under a stripe); the release
        is owner-checked against the observed producer, so a completing
        store racing this sweep cannot be clobbered after a consumer
        re-registers the node."""
        tokens = set()
        for node in list(self.graph.nodes):
            if not depends(node):
                continue
            producer = self.inflight.producer_of(node)
            if producer is not None and \
                    self.inflight.release(node, producer):
                tokens.add(producer)
        return len(tokens)

    def truncate_idle(self, min_idle_events: int | None = None,
                      stop: Callable[[], bool] | None = None,
                      stats: dict | None = None) -> int:
        """Truncate graph subtrees idle beyond ``min_idle_events``
        (config default), pinning every in-flight node.

        Holds **all** stripes: no rewrite can register a new producer
        while the pin snapshot is taken and applied, so an in-flight
        node can never be truncated out from under its producer.
        Queries blocked in phase-3 waits (outside stripes) are safe via
        recency — their matched nodes were just access-stamped — and
        via the store planner's liveness re-check.

        ``stop``/``stats`` pass through to
        :meth:`~repro.recycler.graph.RecyclerGraph.truncate` — the
        maintenance manager uses them for prompt shutdown and for its
        bytes-reclaimed counter.
        """
        if min_idle_events is None:
            min_idle_events = self.config.truncate_min_idle_events
        with self._stripes.all():
            return self.graph.truncate(
                min_idle_events, pinned=self.inflight.active_nodes(),
                stop=stop, stats=stats)

    def truncate_budgeted(self, min_idle_events: int | None = None,
                          budget_bytes: int | None = None,
                          stop: Callable[[], bool] | None = None,
                          stats: dict | None = None) -> tuple[int, bool]:
        """Cost-aware truncation (the maintenance scheduler's workhorse):
        same eligibility and pinning as :meth:`truncate_idle`, but
        victims fall **lowest benefit-per-byte first** (Eq. 1 via the
        shared :class:`~repro.recycler.benefit.BenefitModel`) and the
        cycle stops at ``budget_bytes`` reclaimed or when ``stop`` fires
        (time budget / shutdown).  Returns ``(removed, exhausted)``."""
        if min_idle_events is None:
            min_idle_events = self.config.truncate_min_idle_events
        with self._stripes.all():
            return self.graph.truncate_budgeted(
                min_idle_events, pinned=self.inflight.active_nodes(),
                budget_bytes=budget_bytes,
                score=self.model.truncation_score,
                stop=stop, stats=stats)

    def collect_version_dead(self, stop: Callable[[], bool] | None = None,
                             stats: dict | None = None) -> int:
        """Sweep graph subtrees whose incarnation stamps a drop or full
        re-register left permanently behind the live catalog
        (:meth:`~repro.recycler.graph.RecyclerGraph.collect_version_dead`).

        Holds **all** stripes for the same reason :meth:`truncate_idle`
        does: the in-flight pin snapshot must be complete — no rewrite
        can register a new producer while dead nodes are collected, so
        a producer's node can never be swept out from under it.  The
        common no-DDL cycle skips the stripes entirely via a lock-free
        probe: with nothing dead there is nothing to pin against."""
        if not self.graph.has_version_dead():
            return 0
        with self._stripes.all():
            return self.graph.collect_version_dead(
                pinned=self.inflight.active_nodes(), stop=stop,
                stats=stats)

    def refresh_cached_benefits(self,
                                stop: Callable[[], bool] | None = None
                                ) -> int:
        """Recompute every cached entry's benefit (aging moved on);
        ``stop`` lets a budgeted maintenance cycle cut the pass short."""
        return self.cache.refresh_all(stop=stop)

    def summary(self) -> dict[str, object]:
        """Aggregate counters for reports and tests."""
        with self._records_lock:
            records = list(self.records)
        return {
            "queries": len(records),
            "graph": self.graph.stats(),
            "cache_entries": len(self.cache),
            "cache_used_bytes": self.cache.used,
            "cache": self.cache.counters,
            "total_cost": sum(r.total_cost for r in records),
            "total_matching_seconds": sum(r.matching_seconds
                                          for r in records),
            "total_stall_seconds": sum(r.stall_seconds
                                       for r in records),
        }

    def optimizer_summary(self) -> dict[str, object]:
        """Canonicalization observability: per-strategy rewrite counts
        (plus cost-gated reuse skips) and two recycler match rates —
        ``match_rate`` is matched / (matched + inserted) plan *nodes*
        across all finalized queries; ``plan_hit_rate`` is the fraction
        of queries whose every node matched an existing graph node (the
        direct measure of the shape-miss bug class: an equivalent plan
        that misses inserts a duplicate subtree and drops out of this
        numerator)."""
        with self._optimizer_lock:
            counts = dict(self._optimizer_counts)
        cost_skips = counts.pop("reuse_cost_skips", 0)
        with self._records_lock:
            matched = sum(r.num_matched for r in self.records)
            inserted = sum(r.num_inserted for r in self.records)
            full_hits = sum(1 for r in self.records
                            if r.num_matched > 0 and r.num_inserted == 0)
            queries = len(self.records)
        total = matched + inserted
        return {
            "enabled": self.config.optimize_plans,
            "rewrites": dict(sorted(counts.items())),
            "reuse_cost_skips": cost_skips,
            "nodes_matched": matched,
            "nodes_inserted": inserted,
            "match_rate": matched / total if total else 0.0,
            "plan_hit_rate": full_hits / queries if queries else 0.0,
        }
