"""The recycler cache (paper Sections II and III-E).

A finite in-memory store of materialized results.  Managed as a knapsack
along Dantzig's greedy lines: entries are classified into groups by the
logarithm of their size and kept in increasing-benefit order inside each
group.  Admission materializes while space lasts; replacement evicts a
lower-average-benefit set from the new result's own size group (scanning
all groups is available as an explicitly non-paper extension).

Admission and eviction drive the hR adjustments of Algorithm 2 / Eq. 4
through the :class:`~repro.recycler.benefit.BenefitModel`, and refresh the
benefits of every entry whose true cost or importance changed.

Catalog versioning: entries are tagged with the table/function versions
their result was computed from (the producing query's snapshot).
Admission re-checks those tags against the **live** catalog inside the
structure lock, immediately before publication — a producer that
finished scanning a table some concurrent DDL already replaced is
rejected (``counters.version_rejected``) instead of publishing a
permanently stale entry.  Because DDL bumps the version *before* its
invalidation sweep takes this same lock, every interleaving is covered:
an entry published before the sweep is evicted by it, and one
publishing after the sweep fails the version re-check.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

from ..columnar.table import Table
from .benefit import BenefitModel
from .graph import GraphNode


@dataclass
class CacheEntry:
    """One materialized result in the recycler cache."""

    node: GraphNode
    table: Table
    size: int
    benefit: float
    admitted_event: int
    reuse_count: int = 0
    last_used_event: int = 0
    #: table/function name -> version of the producing query's snapshot;
    #: ``None`` means untagged (direct ``admit`` calls, e.g. unit tests)
    #: and is treated as always-current.
    table_versions: dict[str, int] | None = None
    function_versions: dict[str, int] | None = None
    #: tenant whose byte budget this entry is charged against (``None``
    #: = unattributed); eviction credits the bytes back.
    tenant: str | None = None

    def versions_match(self, table_versions: dict[str, int],
                       function_versions: dict[str, int]) -> bool:
        """Whether this entry was computed from exactly the given
        versions (reuse gate: a query only consumes entries that agree
        with its own snapshot — in either direction)."""
        return (self.table_versions is None
                or (self.table_versions == table_versions
                    and (self.function_versions or {})
                    == function_versions))


@dataclass
class CacheCounters:
    """Observability counters (tests, reports, EXPERIMENTS.md)."""

    admitted: int = 0
    rejected: int = 0
    evicted: int = 0
    reuses: int = 0
    flushes: int = 0
    invalidations: int = 0
    #: admissions refused because a DDL moved the catalog past the
    #: producing query's snapshot (the invalidate-then-swap race, closed)
    version_rejected: int = 0
    #: admissions refused because they would push the producing tenant
    #: past its byte budget (``RecyclerCache.set_tenant_budget``)
    tenant_rejected: int = 0


class RecyclerCache:
    """Finite cache of recycled results with benefit-based policies."""

    def __init__(self, model: BenefitModel,
                 capacity: int | None = None,
                 scan_all_groups: bool = False,
                 live_versions=None) -> None:
        self.model = model
        self.capacity = capacity
        self.scan_all_groups = scan_all_groups
        #: ``live_versions(tables, functions) -> (dict, dict)`` — the
        #: *live* catalog's :meth:`~repro.columnar.catalog.CatalogView.
        #: versions_for`; admission compares entry tags against it.
        #: ``None`` (legacy/unit-test construction) disables the check.
        self.live_versions = live_versions
        self.used = 0
        self._groups: dict[int, list[CacheEntry]] = {}
        self.counters = CacheCounters()
        #: reentrant: eviction happens inside admission, and the recycler
        #: holds a rewrite stripe around most cache calls.
        self._lock = threading.RLock()
        #: micro-lock for the byte budget alone: the admission fast path
        #: reserves space with a few instructions here instead of
        #: queueing behind a full admission/eviction critical section.
        #: Every ``used`` mutation goes through it; it is only ever
        #: taken *inside* ``_lock`` or standalone, never the reverse.
        self._space_lock = threading.Lock()
        #: bytes reserved but not yet published as entries — always
        #: ``sum(entry sizes) == used - _pending``, so invariants hold
        #: even while a reservation waits for the structure lock.
        self._pending = 0
        #: per-tenant byte caps and published usage (both mutated under
        #: ``_lock``; the budget is checked at the same point as the
        #: version gate, immediately before publication).
        self.tenant_limits: dict[str, int] = {}
        self.tenant_used: dict[str, int] = {}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        with self._lock:
            out: list[CacheEntry] = []
            for group in self._groups.values():
                out.extend(group)
            return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(g) for g in self._groups.values())

    @property
    def free(self) -> float:
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.used

    @staticmethod
    def group_of(size: int) -> int:
        """Size group: logarithm of the footprint (paper Section III-E)."""
        return max(int(size).bit_length(), 1)

    # ------------------------------------------------------------------
    # admission & replacement
    # ------------------------------------------------------------------
    def would_admit(self, benefit: float, size: int) -> bool:
        """Dry-run of the admission decision (no mutation).

        Used at store-injection time (history mode) and by speculative
        store decisions at run time.
        """
        with self._lock:
            if self.capacity is not None and size > self.capacity:
                return False
            if size <= self.free:
                return True
            return self._find_victims(benefit, size) is not None

    def _try_reserve(self, size: int) -> bool:
        """Atomically reserve ``size`` bytes when they fit in free space.

        The admission fast path: a store completing while space lasts
        claims its bytes with this check-and-add instead of deciding
        under the structure lock, so the admission never *performs* a
        victim scan and cannot be rejected once reserved.  (Publication
        still takes ``_lock`` briefly to insert the entry and run
        Algorithm 2.)  On budget pressure it fails and admission falls
        back to the locked replacement path.
        """
        with self._space_lock:
            if self.capacity is not None and \
                    self.used + size > self.capacity:
                return False
            self.used += size
            self._pending += size
            return True

    def _unreserve(self, size: int) -> None:
        """Back out a reservation that will not be published."""
        with self._space_lock:
            self.used -= size
            self._pending -= size

    def _commit_reservation(self, size: int) -> None:
        """A reserved entry was published: the bytes are no longer
        pending."""
        with self._space_lock:
            self._pending -= size

    def _release_bytes(self, size: int) -> None:
        """Return published bytes to the budget (eviction)."""
        with self._space_lock:
            self.used -= size

    def set_tenant_budget(self, tenant: str,
                          limit_bytes: int | None) -> None:
        """Cap the published bytes attributable to ``tenant`` (``None``
        removes the cap).  Applies to future admissions; existing
        entries keep their charge until evicted."""
        with self._lock:
            if limit_bytes is None:
                self.tenant_limits.pop(tenant, None)
            else:
                self.tenant_limits[tenant] = limit_bytes

    def tenant_usage(self) -> dict[str, int]:
        """Published bytes per tenant (observability / tests)."""
        with self._lock:
            return dict(self.tenant_used)

    def _tenant_over_budget(self, tenant: str | None, size: int) -> bool:
        """Per-tenant admission gate (caller holds ``_lock``): True when
        charging ``size`` more bytes to ``tenant`` would exceed its
        budget."""
        if tenant is None:
            return False
        limit = self.tenant_limits.get(tenant)
        if limit is None or \
                self.tenant_used.get(tenant, 0) + size <= limit:
            return False
        self.counters.tenant_rejected += 1
        return True

    def admit(self, node: GraphNode, table: Table,
              table_versions: dict[str, int] | None = None,
              function_versions: dict[str, int] | None = None,
              tenant: str | None = None) -> bool:
        """Materialize ``node``'s result into the cache (atomically).

        Returns False when the replacement policy rejects it.  On success
        the hR values of the node's (potential) DMDs are reduced
        (Algorithm 2) and all affected cached benefits are refreshed.

        ``table_versions`` / ``function_versions`` tag the entry with
        the versions the producing query's snapshot read.  Tagged
        admission is re-validated against the live catalog **inside the
        structure lock, immediately before publication** — the only
        point where it races neither a version bump nor the invalidation
        sweep (both serialize on this lock; see the module docstring).

        ``tenant`` charges the entry against that tenant's byte budget
        (:meth:`set_tenant_budget`); an admission that would exceed it
        is rejected at the same pre-publication point as the version
        gate, so a throttled tenant cannot crowd out the shared cache.
        """
        if node.entry is not None:
            return True  # already cached (e.g. by a concurrent query)
        size = table.nbytes()
        if self.capacity is not None and size > self.capacity:
            with self._lock:
                self.counters.rejected += 1
            return False
        if self._try_reserve(size):
            # Fast path: bytes secured, publish without a victim scan.
            with self._lock:
                if node.entry is not None:
                    self._unreserve(size)
                    return True
                if self._versions_behind(table_versions,
                                         function_versions) or \
                        self._tenant_over_budget(tenant, size):
                    self._unreserve(size)
                    return False
                self._publish(node, table, size,
                              table_versions=table_versions,
                              function_versions=function_versions,
                              tenant=tenant)
                return True
        with self._lock:
            # Budget pressure: full replacement policy.  The victims'
            # bytes are swapped for this entry's reservation in one
            # atomic step, so a fast-path racer can never steal the
            # space an eviction frees — and nothing is evicted unless
            # the admission actually goes through.
            if node.entry is not None:
                return True
            if self._versions_behind(table_versions, function_versions) \
                    or self._tenant_over_budget(tenant, size):
                return False
            benefit = self.model.benefit(node, size_override=size)
            for _ in range(8):
                if self._try_reserve(size):
                    self._publish(node, table, size, benefit=benefit,
                                  table_versions=table_versions,
                                  function_versions=function_versions,
                                  tenant=tenant)
                    return True
                victims = self._find_victims(benefit, size)
                if victims is None:
                    break
                freed = sum(victim.size for victim in victims)
                with self._space_lock:
                    fits = self.capacity is None or \
                        self.used - freed + size <= self.capacity
                    if fits:
                        self.used += size - freed
                        self._pending += size
                if not fits:
                    continue  # a racer reserved meanwhile; re-scan
                for victim in victims:
                    self._remove_entry(victim)
                self._publish(node, table, size, benefit=benefit,
                              table_versions=table_versions,
                              function_versions=function_versions,
                              tenant=tenant)
                return True
            self.counters.rejected += 1
            return False

    def _versions_behind(self, table_versions: dict[str, int] | None,
                         function_versions: dict[str, int] | None) -> bool:
        """Version-tagged admission gate (caller holds ``_lock``): True
        when a DDL moved the live catalog past the producer's snapshot,
        i.e. the result was computed from a table that no longer
        exists in that incarnation."""
        if table_versions is None or self.live_versions is None:
            return False
        live_tables, live_functions = self.live_versions(
            table_versions, function_versions or {})
        if live_tables == table_versions and \
                live_functions == (function_versions or {}):
            return False
        self.counters.version_rejected += 1
        return True

    def _publish(self, node: GraphNode, table: Table, size: int,
                 benefit: float | None = None,
                 table_versions: dict[str, int] | None = None,
                 function_versions: dict[str, int] | None = None,
                 tenant: str | None = None) -> None:
        """Insert the (space-reserved) entry and run Algorithm 2.  Caller
        holds ``_lock``."""
        if benefit is None:
            benefit = self.model.benefit(node, size_override=size)
        entry = CacheEntry(node=node, table=table, size=size,
                           benefit=benefit,
                           admitted_event=self.model.graph.event,
                           table_versions=table_versions,
                           function_versions=function_versions,
                           tenant=tenant)
        node.entry = entry
        if tenant is not None:
            self.tenant_used[tenant] = \
                self.tenant_used.get(tenant, 0) + size
        self._commit_reservation(size)
        self._insert_sorted(entry)
        self.counters.admitted += 1
        adjusted = self.model.on_admit(node)
        self._refresh_affected(node, adjusted)

    def _find_victims(self, benefit: float,
                      size: int) -> list[CacheEntry] | None:
        """Dantzig-style greedy scan for an eviction set.

        Scans the new result's size group in increasing benefit order,
        tracking the victims' total size and average benefit, until either
        the average exceeds the new result's benefit (reject) or enough
        space is freed (accept).
        """
        if self.scan_all_groups:
            pool = sorted(self.entries(), key=lambda e: e.benefit)
        else:
            pool = self._groups.get(self.group_of(size), [])
        victims: list[CacheEntry] = []
        freed = self.free
        benefit_sum = 0.0
        for entry in pool:
            candidate_avg = (benefit_sum + entry.benefit) \
                / (len(victims) + 1)
            if candidate_avg >= benefit:
                return None
            victims.append(entry)
            benefit_sum += entry.benefit
            freed += entry.size
            if freed >= size:
                return victims
        return None

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict(self, entry: CacheEntry) -> None:
        """Remove an entry; restores descendants' hR via Eq. 4."""
        with self._lock:
            if self._remove_entry(entry):
                self._release_bytes(entry.size)

    def _remove_entry(self, entry: CacheEntry) -> bool:
        """Structural eviction only — the caller (holding ``_lock``)
        settles the byte budget (release, or atomic swap for an
        admission under pressure)."""
        group = self._groups.get(self.group_of(entry.size), [])
        if entry not in group:
            return False  # already evicted by a concurrent invalidation
        group.remove(entry)
        entry.node.entry = None
        if entry.tenant is not None:
            remaining = self.tenant_used.get(entry.tenant, 0) - entry.size
            if remaining > 0:
                self.tenant_used[entry.tenant] = remaining
            else:
                self.tenant_used.pop(entry.tenant, None)
        self.counters.evicted += 1
        adjusted = self.model.on_evict(entry.node)
        self._refresh_affected(entry.node, adjusted)
        return True

    def flush(self) -> int:
        """Evict everything (simulates update-driven invalidation of the
        whole cache between query batches, as in the paper's Fig. 6)."""
        with self._lock:
            entries = self.entries()
            for entry in entries:
                self.evict(entry)
            self.counters.flushes += 1
            return len(entries)

    def invalidate_table(self, table: str) -> int:
        """Evict every cached result that reads ``table`` (paper: evict
        dependents when a transaction commits updates)."""
        with self._lock:
            victims = [e for e in self.entries()
                       if _depends_on_table(e.node, table)]
            for victim in victims:
                self.evict(victim)
            self.counters.invalidations += len(victims)
            return len(victims)

    def invalidate_function(self, function: str) -> int:
        """Evict every cached result derived from a table function."""
        with self._lock:
            victims = [e for e in self.entries()
                       if _depends_on_function(e.node, function)]
            for victim in victims:
                self.evict(victim)
            self.counters.invalidations += len(victims)
            return len(victims)

    # ------------------------------------------------------------------
    # benefit refresh & bookkeeping
    # ------------------------------------------------------------------
    def note_reuse(self, entry: CacheEntry) -> None:
        with self._lock:
            entry.reuse_count += 1
            entry.last_used_event = self.model.graph.event
            self.counters.reuses += 1
            self.refresh(entry.node)

    def refresh(self, node: GraphNode) -> None:
        """Recompute a cached node's benefit and re-position its entry."""
        with self._lock:
            entry = node.entry
            if entry is None:
                return
            group = self._groups.get(self.group_of(entry.size), [])
            if entry in group:
                group.remove(entry)
            entry.benefit = self.model.benefit(node,
                                               size_override=entry.size)
            self._insert_sorted(entry)

    def refresh_all(self, stop=None) -> int:
        """Recompute every cached benefit (maintenance: aging moves on
        with the event clock even while a result sits unused).  Returns
        the number of refreshed entries.

        ``stop`` is the maintenance manager's budget/shutdown hook,
        consulted per entry: a refresh cut short leaves the remaining
        entries at their previous (still internally consistent)
        benefits — they are recomputed lazily on reuse or by the next
        cycle."""
        with self._lock:
            refreshed = 0
            for entry in self.entries():
                if stop is not None and stop():
                    break
                self.refresh(entry.node)
                refreshed += 1
            return refreshed

    def _refresh_affected(self, node: GraphNode,
                          adjusted: list[GraphNode]) -> None:
        """After (de)materializing ``node``: descendants whose hR changed
        and materialized ancestors whose true cost changed."""
        for descendant in adjusted:
            if descendant.is_materialized:
                self.refresh(descendant)
        for ancestor in self.model.graph.materialized_ancestor_frontier(
                node):
            self.refresh(ancestor)

    def _insert_sorted(self, entry: CacheEntry) -> None:
        group = self._groups.setdefault(self.group_of(entry.size), [])
        keys = [e.benefit for e in group]
        group.insert(bisect.bisect_right(keys, entry.benefit), entry)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Cache consistency (tests): accounting and group ordering."""
        with self._lock:
            self._check_invariants()

    def _check_invariants(self) -> None:
        total = 0
        per_tenant: dict[str, int] = {}
        for bucket, group in self._groups.items():
            benefits = [e.benefit for e in group]
            assert benefits == sorted(benefits), \
                f"group {bucket} not benefit-ordered"
            for entry in group:
                assert self.group_of(entry.size) == bucket
                assert entry.node.entry is entry
                total += entry.size
                if entry.tenant is not None:
                    per_tenant[entry.tenant] = \
                        per_tenant.get(entry.tenant, 0) + entry.size
        assert per_tenant == {t: b for t, b in self.tenant_used.items()
                              if b}, \
            f"tenant accounting drifted: {per_tenant} != {self.tenant_used}"
        # Reservations waiting on the structure lock inflate ``used``
        # and ``_pending`` in lockstep, so the published total must
        # always equal their difference.
        with self._space_lock:
            used, pending = self.used, self._pending
        assert pending >= 0, f"pending={pending}"
        assert total == used - pending, \
            f"used={used} pending={pending} actual={total}"
        if self.capacity is not None:
            assert used <= self.capacity


def _depends_on_table(node: GraphNode, table: str) -> bool:
    return table.lower() in node.tables


def _depends_on_function(node: GraphNode, function: str) -> bool:
    return function.lower() in node.functions
