"""The recycler cache (paper Sections II and III-E).

A finite in-memory store of materialized results.  Managed as a knapsack
along Dantzig's greedy lines: entries are classified into groups by the
logarithm of their size and kept in increasing-benefit order inside each
group.  Admission materializes while space lasts; replacement evicts a
lower-average-benefit set from the new result's own size group (scanning
all groups is available as an explicitly non-paper extension).

Admission and eviction drive the hR adjustments of Algorithm 2 / Eq. 4
through the :class:`~repro.recycler.benefit.BenefitModel`, and refresh the
benefits of every entry whose true cost or importance changed.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

from ..columnar.table import Table
from ..plan.logical import Scan, TableFunctionScan
from .benefit import BenefitModel
from .graph import GraphNode


@dataclass
class CacheEntry:
    """One materialized result in the recycler cache."""

    node: GraphNode
    table: Table
    size: int
    benefit: float
    admitted_event: int
    reuse_count: int = 0
    last_used_event: int = 0


@dataclass
class CacheCounters:
    """Observability counters (tests, reports, EXPERIMENTS.md)."""

    admitted: int = 0
    rejected: int = 0
    evicted: int = 0
    reuses: int = 0
    flushes: int = 0
    invalidations: int = 0


class RecyclerCache:
    """Finite cache of recycled results with benefit-based policies."""

    def __init__(self, model: BenefitModel,
                 capacity: int | None = None,
                 scan_all_groups: bool = False) -> None:
        self.model = model
        self.capacity = capacity
        self.scan_all_groups = scan_all_groups
        self.used = 0
        self._groups: dict[int, list[CacheEntry]] = {}
        self.counters = CacheCounters()
        #: reentrant: eviction happens inside admission, and the recycler
        #: holds its own coarse lock around most cache calls.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        with self._lock:
            out: list[CacheEntry] = []
            for group in self._groups.values():
                out.extend(group)
            return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(g) for g in self._groups.values())

    @property
    def free(self) -> float:
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.used

    @staticmethod
    def group_of(size: int) -> int:
        """Size group: logarithm of the footprint (paper Section III-E)."""
        return max(int(size).bit_length(), 1)

    # ------------------------------------------------------------------
    # admission & replacement
    # ------------------------------------------------------------------
    def would_admit(self, benefit: float, size: int) -> bool:
        """Dry-run of the admission decision (no mutation).

        Used at store-injection time (history mode) and by speculative
        store decisions at run time.
        """
        with self._lock:
            if self.capacity is not None and size > self.capacity:
                return False
            if size <= self.free:
                return True
            return self._find_victims(benefit, size) is not None

    def admit(self, node: GraphNode, table: Table) -> bool:
        """Materialize ``node``'s result into the cache (atomically).

        Returns False when the replacement policy rejects it.  On success
        the hR values of the node's (potential) DMDs are reduced
        (Algorithm 2) and all affected cached benefits are refreshed.
        """
        with self._lock:
            if node.entry is not None:
                return True  # already cached (e.g. by a concurrent query)
            size = table.nbytes()
            if self.capacity is not None and size > self.capacity:
                self.counters.rejected += 1
                return False
            benefit = self.model.benefit(node, size_override=size)
            if size > self.free:
                victims = self._find_victims(benefit, size)
                if victims is None:
                    self.counters.rejected += 1
                    return False
                for victim in victims:
                    self.evict(victim)
            entry = CacheEntry(node=node, table=table, size=size,
                               benefit=benefit,
                               admitted_event=self.model.graph.event)
            node.entry = entry
            self.used += size
            self._insert_sorted(entry)
            self.counters.admitted += 1
            adjusted = self.model.on_admit(node)
            self._refresh_affected(node, adjusted)
            return True

    def _find_victims(self, benefit: float,
                      size: int) -> list[CacheEntry] | None:
        """Dantzig-style greedy scan for an eviction set.

        Scans the new result's size group in increasing benefit order,
        tracking the victims' total size and average benefit, until either
        the average exceeds the new result's benefit (reject) or enough
        space is freed (accept).
        """
        if self.scan_all_groups:
            pool = sorted(self.entries(), key=lambda e: e.benefit)
        else:
            pool = self._groups.get(self.group_of(size), [])
        victims: list[CacheEntry] = []
        freed = self.free
        benefit_sum = 0.0
        for entry in pool:
            candidate_avg = (benefit_sum + entry.benefit) \
                / (len(victims) + 1)
            if candidate_avg >= benefit:
                return None
            victims.append(entry)
            benefit_sum += entry.benefit
            freed += entry.size
            if freed >= size:
                return victims
        return None

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict(self, entry: CacheEntry) -> None:
        """Remove an entry; restores descendants' hR via Eq. 4."""
        with self._lock:
            group = self._groups.get(self.group_of(entry.size), [])
            if entry not in group:
                return  # already evicted by a concurrent invalidation
            group.remove(entry)
            self.used -= entry.size
            entry.node.entry = None
            self.counters.evicted += 1
            adjusted = self.model.on_evict(entry.node)
            self._refresh_affected(entry.node, adjusted)

    def flush(self) -> int:
        """Evict everything (simulates update-driven invalidation of the
        whole cache between query batches, as in the paper's Fig. 6)."""
        with self._lock:
            entries = self.entries()
            for entry in entries:
                self.evict(entry)
            self.counters.flushes += 1
            return len(entries)

    def invalidate_table(self, table: str) -> int:
        """Evict every cached result that reads ``table`` (paper: evict
        dependents when a transaction commits updates)."""
        with self._lock:
            victims = [e for e in self.entries()
                       if _depends_on_table(e.node, table)]
            for victim in victims:
                self.evict(victim)
            self.counters.invalidations += len(victims)
            return len(victims)

    def invalidate_function(self, function: str) -> int:
        """Evict every cached result derived from a table function."""
        with self._lock:
            victims = [e for e in self.entries()
                       if _depends_on_function(e.node, function)]
            for victim in victims:
                self.evict(victim)
            self.counters.invalidations += len(victims)
            return len(victims)

    # ------------------------------------------------------------------
    # benefit refresh & bookkeeping
    # ------------------------------------------------------------------
    def note_reuse(self, entry: CacheEntry) -> None:
        with self._lock:
            entry.reuse_count += 1
            entry.last_used_event = self.model.graph.event
            self.counters.reuses += 1
            self.refresh(entry.node)

    def refresh(self, node: GraphNode) -> None:
        """Recompute a cached node's benefit and re-position its entry."""
        with self._lock:
            entry = node.entry
            if entry is None:
                return
            group = self._groups.get(self.group_of(entry.size), [])
            if entry in group:
                group.remove(entry)
            entry.benefit = self.model.benefit(node,
                                               size_override=entry.size)
            self._insert_sorted(entry)

    def _refresh_affected(self, node: GraphNode,
                          adjusted: list[GraphNode]) -> None:
        """After (de)materializing ``node``: descendants whose hR changed
        and materialized ancestors whose true cost changed."""
        for descendant in adjusted:
            if descendant.is_materialized:
                self.refresh(descendant)
        for ancestor in self.model.graph.materialized_ancestor_frontier(
                node):
            self.refresh(ancestor)

    def _insert_sorted(self, entry: CacheEntry) -> None:
        group = self._groups.setdefault(self.group_of(entry.size), [])
        keys = [e.benefit for e in group]
        group.insert(bisect.bisect_right(keys, entry.benefit), entry)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Cache consistency (tests): accounting and group ordering."""
        with self._lock:
            self._check_invariants()

    def _check_invariants(self) -> None:
        total = 0
        for bucket, group in self._groups.items():
            benefits = [e.benefit for e in group]
            assert benefits == sorted(benefits), \
                f"group {bucket} not benefit-ordered"
            for entry in group:
                assert self.group_of(entry.size) == bucket
                assert entry.node.entry is entry
                total += entry.size
        assert total == self.used, f"used={self.used} actual={total}"
        if self.capacity is not None:
            assert self.used <= self.capacity


def _depends_on_table(node: GraphNode, table: str) -> bool:
    table = table.lower()
    return any(isinstance(p, Scan) and p.table == table
               for p in node.plan.walk())


def _depends_on_function(node: GraphNode, function: str) -> bool:
    function = function.lower()
    return any(isinstance(p, TableFunctionScan) and p.function == function
               for p in node.plan.walk())
