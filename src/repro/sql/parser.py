"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    stmt      := select (UNION ALL select)* [';']
    select    := SELECT [DISTINCT] items FROM from_items
                 {[LEFT|RIGHT|FULL [OUTER]|SEMI|ANTI|INNER] JOIN
                  table_ref ON expr}
                 [WHERE expr] [GROUP BY exprs] [HAVING expr]
                 [ORDER BY order_items] [LIMIT n [OFFSET k]]
    from_item := ident [alias] | ident '(' args ')' [alias]
                 | '(' stmt ')' alias
    expr      := or-expression with NOT/comparison/BETWEEN/IN/LIKE,
                 arithmetic, CASE, function calls, date literals,
                 [NOT] EXISTS '(' stmt ')', [NOT] IN '(' stmt ')',
                 scalar subqueries '(' stmt ')'
"""

from __future__ import annotations

from ..errors import SqlError
from . import ast
from .lexer import Token, tokenize


def parse(text: str) -> ast.SelectStmt:
    """Parse one SELECT statement (with optional UNION ALL chain)."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept_keyword(self, *names: str) -> Token | None:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None

    def expect_keyword(self, name: str) -> Token:
        token = self.peek()
        if not token.is_keyword(name):
            raise SqlError(f"expected {name.upper()}, got {token.value!r}",
                           token.line, token.column)
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_symbol(symbol):
            raise SqlError(f"expected {symbol!r}, got {token.value!r}",
                           token.line, token.column)
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise SqlError(f"expected identifier, got {token.value!r}",
                           token.line, token.column)
        return self.advance().value

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.SelectStmt:
        stmt = self.parse_select()
        while self.accept_keyword("union"):
            self.expect_keyword("all")
            stmt.union_all.append(self.parse_select())
        self.accept_symbol(";")
        token = self.peek()
        if token.kind != "eof":
            raise SqlError(f"unexpected trailing input {token.value!r}",
                           token.line, token.column)
        return stmt

    def parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        stmt = ast.SelectStmt()
        stmt.distinct = self.accept_keyword("distinct") is not None
        stmt.items = self._select_items()
        self.expect_keyword("from")
        stmt.from_tables.append(self._table_ref())
        while True:
            if self.accept_symbol(","):
                stmt.from_tables.append(self._table_ref())
                continue
            join_kind = self._join_kind()
            if join_kind is None:
                break
            table = self._table_ref()
            self.expect_keyword("on")
            condition = self._expr()
            stmt.joins.append(ast.JoinClause(join_kind, table, condition))
        if self.accept_keyword("where"):
            stmt.where = self._expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            stmt.group_by.append(self._expr())
            while self.accept_symbol(","):
                stmt.group_by.append(self._expr())
        if self.accept_keyword("having"):
            stmt.having = self._expr()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            stmt.order_by.append(self._order_item())
            while self.accept_symbol(","):
                stmt.order_by.append(self._order_item())
        if self.accept_keyword("limit"):
            stmt.limit = self._int_literal()
            if self.accept_keyword("offset"):
                stmt.offset = self._int_literal()
        return stmt

    def _select_items(self) -> list[ast.SelectItem]:
        items = [self._select_item()]
        while self.accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self.peek().is_symbol("*"):
            self.advance()
            return ast.SelectItem(expr=None)
        expr = self._expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _join_kind(self) -> str | None:
        token = self.peek()
        if token.is_keyword("join"):
            self.advance()
            return "inner"
        if token.is_keyword("inner", "left", "right", "full", "semi",
                            "anti"):
            kind = self.advance().value
            if kind in ("left", "right", "full"):
                self.accept_keyword("outer")
            self.expect_keyword("join")
            return kind
        return None

    def _subquery_body(self) -> ast.SelectStmt:
        """A SELECT (with optional UNION ALL chain) inside parens; the
        opening paren has been consumed, the closing one is expected."""
        subquery = self.parse_select()
        while self.accept_keyword("union"):
            self.expect_keyword("all")
            subquery.union_all.append(self.parse_select())
        self.expect_symbol(")")
        return subquery

    def _table_ref(self) -> ast.TableRef:
        if self.accept_symbol("("):
            subquery = self._subquery_body()
            alias = self._optional_alias()
            if alias is None:
                token = self.peek()
                raise SqlError("derived table requires an alias",
                               token.line, token.column)
            return ast.TableRef(subquery=subquery, alias=alias)
        name = self.expect_ident()
        if self.peek().is_symbol("("):
            self.advance()
            args: list[ast.SqlExpr] = []
            if not self.peek().is_symbol(")"):
                args.append(self._expr())
                while self.accept_symbol(","):
                    args.append(self._expr())
            self.expect_symbol(")")
            return ast.TableRef(function=name, function_args=args,
                                alias=self._optional_alias())
        return ast.TableRef(name=name, alias=self._optional_alias())

    def _optional_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self.expect_ident()
        if self.peek().kind == "ident":
            return self.advance().value
        return None

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    def _int_literal(self) -> int:
        token = self.peek()
        if token.kind != "number" or "." in token.value:
            raise SqlError(f"expected integer, got {token.value!r}",
                           token.line, token.column)
        self.advance()
        return int(token.value)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr(self) -> ast.SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.SqlExpr:
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = ast.Binary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.SqlExpr:
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.SqlExpr:
        if self.peek().is_keyword("not") \
                and self.peek(1).is_keyword("exists"):
            self.advance()
            exists = self._exists_expr()
            exists.negated = True
            return exists
        if self.accept_keyword("not"):
            return ast.Unary("not", self._not_expr())
        return self._comparison()

    def _exists_expr(self) -> ast.ExistsExpr:
        self.expect_keyword("exists")
        self.expect_symbol("(")
        token = self.peek()
        if not token.is_keyword("select"):
            raise SqlError("EXISTS requires a subquery", token.line,
                           token.column)
        return ast.ExistsExpr(self._subquery_body())

    def _comparison(self) -> ast.SqlExpr:
        left = self._additive()
        token = self.peek()
        if token.is_symbol("=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            return ast.Binary(op, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            follow = self.peek(1)
            if follow.is_keyword("between", "in", "like"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("between"):
            self.advance()
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return ast.BetweenExpr(left, low, high, negated)
        if token.is_keyword("in"):
            self.advance()
            self.expect_symbol("(")
            if self.peek().is_keyword("select"):
                subquery = self._subquery_body()
                return ast.InSubquery(left, subquery, negated)
            values: list[ast.SqlExpr] = []
            if not self.peek().is_symbol(")"):
                values.append(self._additive())
                while self.accept_symbol(","):
                    values.append(self._additive())
            self.expect_symbol(")")
            return ast.InExpr(left, values, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.peek()
            if pattern.kind != "string":
                raise SqlError("LIKE requires a string literal pattern",
                               pattern.line, pattern.column)
            self.advance()
            return ast.LikeExpr(left, pattern.value, negated)
        return left

    def _additive(self) -> ast.SqlExpr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.is_symbol("+", "-"):
                op = self.advance().value
                left = ast.Binary(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.SqlExpr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.is_symbol("*", "/", "%"):
                op = self.advance().value
                left = ast.Binary(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.SqlExpr:
        if self.accept_symbol("-"):
            return ast.Unary("-", self._unary())
        if self.accept_symbol("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.SqlExpr:
        token = self.peek()
        if token.is_symbol("(") and self.peek(1).is_keyword("select"):
            self.advance()
            return ast.ScalarSubquery(self._subquery_body())
        if token.is_symbol("("):
            self.advance()
            expr = self._expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(token.value)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.value)
        if token.is_keyword("date"):
            self.advance()
            literal = self.peek()
            if literal.kind != "string":
                raise SqlError("DATE requires a string literal",
                               literal.line, literal.column)
            self.advance()
            return ast.DateLit(literal.value)
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLit(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLit(False)
        if token.is_keyword("exists"):
            return self._exists_expr()
        if token.is_keyword("case"):
            return self._case_expr()
        if token.kind == "ident":
            return self._identifier_or_call()
        raise SqlError(f"unexpected token {token.value!r}", token.line,
                       token.column)

    def _case_expr(self) -> ast.SqlExpr:
        self.expect_keyword("case")
        whens: list[tuple[ast.SqlExpr, ast.SqlExpr]] = []
        while self.accept_keyword("when"):
            condition = self._expr()
            self.expect_keyword("then")
            value = self._expr()
            whens.append((condition, value))
        otherwise = None
        if self.accept_keyword("else"):
            otherwise = self._expr()
        self.expect_keyword("end")
        if not whens:
            token = self.peek()
            raise SqlError("CASE requires at least one WHEN", token.line,
                           token.column)
        return ast.CaseExpr(whens, otherwise)

    def _identifier_or_call(self) -> ast.SqlExpr:
        name = self.expect_ident()
        if self.peek().is_symbol("("):
            self.advance()
            if self.accept_symbol("*"):
                self.expect_symbol(")")
                return ast.FuncCall(name.lower(), [], is_star=True)
            distinct = self.accept_keyword("distinct") is not None
            args: list[ast.SqlExpr] = []
            if not self.peek().is_symbol(")"):
                args.append(self._expr())
                while self.accept_symbol(","):
                    args.append(self._expr())
            self.expect_symbol(")")
            return ast.FuncCall(name.lower(), args, distinct=distinct)
        if self.accept_symbol("."):
            column = self.expect_ident()
            return ast.Identifier(column, qualifier=name)
        return ast.Identifier(name)
