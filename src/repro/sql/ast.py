"""Abstract syntax tree for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# scalar expressions
# ----------------------------------------------------------------------
class SqlExpr:
    """Base class for parsed scalar expressions."""


@dataclass
class Identifier(SqlExpr):
    name: str
    qualifier: str | None = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier \
            else self.name


@dataclass
class NumberLit(SqlExpr):
    text: str

    @property
    def value(self):
        return float(self.text) if "." in self.text else int(self.text)


@dataclass
class StringLit(SqlExpr):
    value: str


@dataclass
class DateLit(SqlExpr):
    iso: str


@dataclass
class BoolLit(SqlExpr):
    value: bool


@dataclass
class Unary(SqlExpr):
    op: str           # "-" | "not"
    operand: SqlExpr


@dataclass
class Binary(SqlExpr):
    op: str           # + - * / % = <> < <= > >= and or
    left: SqlExpr
    right: SqlExpr


@dataclass
class BetweenExpr(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class InExpr(SqlExpr):
    operand: SqlExpr
    values: list[SqlExpr]
    negated: bool = False


@dataclass
class LikeExpr(SqlExpr):
    operand: SqlExpr
    pattern: str
    negated: bool = False


@dataclass
class FuncCall(SqlExpr):
    name: str
    args: list[SqlExpr]
    is_star: bool = False     # count(*)
    distinct: bool = False


@dataclass
class CaseExpr(SqlExpr):
    whens: list[tuple[SqlExpr, SqlExpr]]
    otherwise: SqlExpr | None


# Subquery expressions.  These only survive until binding: the binder's
# decorrelation pre-pass rewrites them into semi/anti joins (EXISTS,
# IN (SELECT …)) or single-row derived tables (scalar subqueries), so
# no plan node or executable expression ever carries a nested SELECT.
@dataclass
class ExistsExpr(SqlExpr):
    subquery: "SelectStmt"
    negated: bool = False


@dataclass
class InSubquery(SqlExpr):
    operand: SqlExpr
    subquery: "SelectStmt"
    negated: bool = False


@dataclass
class ScalarSubquery(SqlExpr):
    subquery: "SelectStmt"


# ----------------------------------------------------------------------
# query structure
# ----------------------------------------------------------------------
@dataclass
class SelectItem:
    expr: SqlExpr | None      # None means "*"
    alias: str | None = None


@dataclass
class TableRef:
    """A FROM item: base table, table function, or derived table."""

    name: str | None = None                 # base table
    function: str | None = None             # table function name
    function_args: list[SqlExpr] = field(default_factory=list)
    subquery: "SelectStmt | None" = None    # derived table
    alias: str | None = None


@dataclass
class JoinClause:
    kind: str   # "inner" | "left" | "right" | "full" | "semi" | "anti"
    table: TableRef
    #: None only for decorrelated uncorrelated EXISTS (key-less join).
    condition: SqlExpr | None


@dataclass
class OrderItem:
    expr: SqlExpr
    ascending: bool = True


@dataclass
class SelectStmt:
    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_tables: list[TableRef] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: SqlExpr | None = None
    group_by: list[SqlExpr] = field(default_factory=list)
    having: SqlExpr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    #: UNION ALL chain: additional SELECTs appended to this one.
    union_all: list["SelectStmt"] = field(default_factory=list)
