"""SQL lexer: text -> token stream."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "limit", "offset", "as", "and", "or", "not", "in", "like",
    "between", "join", "inner", "left", "right", "full", "outer",
    "semi", "anti", "on", "union",
    "all", "asc", "desc", "date", "case", "when", "then", "else", "end",
    "exists", "is", "null", "true", "false",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "||", "(", ")", ",", "+", "-", "*",
           "/", "%", "<", ">", "=", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str       # "ident" | "keyword" | "number" | "string" | "symbol"
                    # | "eof"
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Lex SQL text into tokens; raises :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        column = i - line_start + 1
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lower = word.lower()
            kind = "keyword" if lower in KEYWORDS else "ident"
            value = lower if kind == "keyword" else word
            tokens.append(Token(kind, value, line, column))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit()
                             or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # a trailing qualifier dot like "t.c" must not be
                    # swallowed into a number
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token("number", text[start:i], line, column))
            continue
        if ch == "'":
            i += 1
            start = i
            parts: list[str] = []
            while True:
                if i >= n:
                    raise SqlError("unterminated string literal", line,
                                   column)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":  # escaped quote
                        parts.append(text[start:i + 1])
                        i += 2
                        start = i
                        continue
                    break
                i += 1
            parts.append(text[start:i])
            i += 1
            tokens.append(Token("string", "".join(parts), line, column))
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                value = "<>" if symbol == "!=" else symbol
                tokens.append(Token("symbol", value, line, column))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens
