"""Bind a parsed SELECT statement to a logical plan.

The binder doubles as this system's (deliberately simple) optimizer: it
produces the *canonical* plan shape the recycler graph matches on:

* single-table WHERE conjuncts are pushed below joins (one ``Select``
  directly above each source);
* comma-joins become a left-deep tree in FROM order; equality conjuncts
  between two sources become hash-join keys, remaining multi-source
  conjuncts become the join's extra predicate or a ``Select`` above it;
* aggregates in the SELECT list / HAVING are extracted into an
  ``Aggregate`` node with deterministic output names, followed by an
  optional projection for post-aggregation arithmetic;
* ORDER BY + LIMIT fuse into the heap-based ``TopN`` operator.

Output column names are made unique deterministically (qualifying with
the source alias only on collision), so structurally identical query
texts always produce structurally identical plans — the property the
recycler's exact matching relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..columnar.catalog import CatalogView
from ..errors import SqlError
from ..expr import nodes as e
from ..plan.logical import (Aggregate, Distinct, Join, Limit, PlanNode,
                            Project, Scan, Select, Sort, TableFunctionScan,
                            TopN, UnionAll)
from . import ast

_AGG_NAMES = {"sum", "count", "avg", "min", "max"}

_SCALAR_FUNCS = {"year", "month", "yearmonth", "abs", "round", "floor",
                 "length", "upper", "lower", "substr", "substring",
                 "startswith", "min2", "max2", "bin", "extract_days"}


def _filtered(plan: PlanNode, predicate: e.Expr) -> PlanNode:
    """Place a filter above ``plan``, merging into an existing ``Select``.

    A derived table whose subquery ends in a WHERE would otherwise bind
    an outer filter as ``Select(Select(...))`` while the textually merged
    query binds one ``Select`` with an AND — two shapes for one meaning,
    which the recycler then caches twice.  Constructing through this
    helper keeps the binder's output canonical: one ``Select`` per spot,
    conjuncts combined (``And`` flattens; its key ordering makes the
    conjunct order irrelevant to the fingerprint)."""
    if isinstance(plan, Select):
        return Select(plan.child, e.And([plan.predicate, predicate]))
    return Select(plan, predicate)


def bind(stmt: ast.SelectStmt, catalog: CatalogView) -> PlanNode:
    """Entry point: statement -> logical plan."""
    plan = _Binder(catalog).bind_select(stmt)
    if stmt.union_all:
        parts = [plan] + [_Binder(catalog).bind_select(s)
                          for s in stmt.union_all]
        plan = UnionAll(parts)
    return plan


@dataclass
class _Source:
    """One bound FROM item."""

    alias: str
    plan: PlanNode
    #: source column name -> plan output name (after de-collision)
    names: dict[str, str]
    order: int

    def resolve(self, column: str) -> str | None:
        return self.names.get(column)


@dataclass
class _Scope:
    sources: list[_Source] = field(default_factory=list)

    def resolve(self, ident: ast.Identifier) -> tuple[_Source, str]:
        if ident.qualifier is not None:
            for source in self.sources:
                if source.alias == ident.qualifier:
                    plan_name = source.resolve(ident.name)
                    if plan_name is None:
                        raise SqlError(
                            f"column {ident.display()!r} not found in"
                            f" {ident.qualifier!r}")
                    return source, plan_name
            raise SqlError(f"unknown table alias {ident.qualifier!r}")
        hits = [(source, source.resolve(ident.name))
                for source in self.sources
                if source.resolve(ident.name) is not None]
        if not hits:
            raise SqlError(f"unknown column {ident.name!r}")
        if len(hits) > 1:
            owners = [s.alias for s, _ in hits]
            raise SqlError(
                f"ambiguous column {ident.name!r} (in {owners})")
        return hits[0]


class _Binder:
    def __init__(self, catalog: CatalogView) -> None:
        self.catalog = catalog

    # ==================================================================
    def bind_select(self, stmt: ast.SelectStmt) -> PlanNode:
        scope = self._bind_from(stmt)
        plan = self._build_join_tree(stmt, scope)
        plan = self._apply_grouping(stmt, scope, plan)
        if stmt.distinct:
            plan = Distinct(plan)
        plan = self._apply_ordering(stmt, plan)
        return plan

    # ------------------------------------------------------------------
    # FROM binding with deterministic name de-collision
    # ------------------------------------------------------------------
    def _bind_from(self, stmt: ast.SelectStmt) -> _Scope:
        refs = list(stmt.from_tables) + [j.table for j in stmt.joins]
        needed = self._needed_columns(stmt, refs)
        scope = _Scope()
        used_names: set[str] = set()
        for order, ref in enumerate(refs):
            source = self._bind_table_ref(ref, needed, used_names, order)
            scope.sources.append(source)
            used_names.update(source.names.values())
        return source_scope_check(scope)

    def _bind_table_ref(self, ref: ast.TableRef, needed: dict,
                        used_names: set[str], order: int) -> _Source:
        if ref.subquery is not None:
            plan = bind(ref.subquery, self.catalog)
            columns = plan.output_schema(self.catalog).names
            alias = ref.alias or f"__dt{order}"
        elif ref.function is not None:
            args = [_literal_value(a) for a in ref.function_args]
            plan = TableFunctionScan(ref.function, args)
            columns = plan.output_schema(self.catalog).names
            alias = ref.alias or ref.function
        else:
            assert ref.name is not None
            alias = ref.alias or ref.name
            table_cols = set(
                self.catalog.table_entry(ref.name).table.schema.names)
            wanted = needed.get(alias) or needed.get(ref.name) or set()
            star = needed.get("*", set())
            columns = sorted((wanted | star) & table_cols) or \
                sorted(table_cols)
            unresolved = wanted - table_cols
            if unresolved:
                raise SqlError(
                    f"columns {sorted(unresolved)} not in table"
                    f" {ref.name!r}")
            plan = Scan(ref.name, columns)
        # De-collide output names deterministically.
        names: dict[str, str] = {}
        renames: list[tuple[str, str]] = []
        for column in columns:
            plan_name = column
            if plan_name in used_names:
                plan_name = f"{alias}_{column}"
            suffix = 2
            while plan_name in used_names or plan_name in names.values():
                plan_name = f"{alias}_{column}_{suffix}"
                suffix += 1
            names[column] = plan_name
            if plan_name != column:
                renames.append((column, plan_name))
        if renames:
            outputs = [(names[c], e.Col(c)) for c in columns]
            plan = Project(plan, outputs)
        return _Source(alias=alias, plan=plan, names=names, order=order)

    def _needed_columns(self, stmt: ast.SelectStmt,
                        refs: list[ast.TableRef]) -> dict[str, set[str]]:
        """Which columns each base table must scan.

        Returns alias -> column set; unqualified identifiers land in the
        pseudo-key ``"*"`` and are offered to every table that has them.
        """
        needed: dict[str, set[str]] = {}

        def note(ident: ast.Identifier) -> None:
            key = ident.qualifier or "*"
            needed.setdefault(key, set()).add(ident.name)

        for expr in _all_expressions(stmt):
            for ident in _identifiers_in(expr):
                note(ident)
        return needed

    # ------------------------------------------------------------------
    # join tree construction
    # ------------------------------------------------------------------
    def _build_join_tree(self, stmt: ast.SelectStmt,
                         scope: _Scope) -> PlanNode:
        comma_sources = scope.sources[:len(stmt.from_tables)]
        join_sources = scope.sources[len(stmt.from_tables):]

        conjuncts = _split_conjuncts_ast(stmt.where)
        single, multi = self._classify_conjuncts(conjuncts, scope)

        # Push single-source filters directly above their source.
        filtered: dict[int, PlanNode] = {}
        for source in scope.sources:
            plan = source.plan
            mine = single.get(source.order, [])
            if mine:
                predicate = self._bind_conjunction(mine, scope)
                plan = _filtered(plan, predicate)
            filtered[source.order] = plan

        current = filtered[comma_sources[0].order]
        joined = {comma_sources[0].order}

        for source in comma_sources[1:]:
            right = filtered[source.order]
            keys, others = self._pick_join_keys(multi, joined,
                                                source.order, scope)
            if not keys:
                extra = self._bind_conjunction(others, scope) if others \
                    else None
                if extra is not None or _is_single_row(right):
                    current = self._cross_join(current, right, "inner",
                                               extra)
                else:
                    raise SqlError(
                        f"no join condition connects {source.alias!r}")
            else:
                current = Join(current, right, "inner",
                               [k for k, _ in keys],
                               [k for _, k in keys], None)
                # Leftover conjuncts become an explicit Select so the plan
                # keeps the σ-above-join shape the proactive rules target.
                if others:
                    current = _filtered(
                        current, self._bind_conjunction(others, scope))
            joined.add(source.order)

        for clause, source in zip(stmt.joins, join_sources):
            on_conjuncts = _split_conjuncts_ast(clause.condition)
            keys, extras = self._on_condition_keys(on_conjuncts, joined,
                                                   source.order, scope)
            right = filtered[source.order]
            extra = self._bind_conjunction(extras, scope) if extras \
                else None
            if keys:
                if clause.kind == "inner" and extra is not None:
                    current = _filtered(
                        Join(current, right, "inner",
                             [k for k, _ in keys],
                             [k for _, k in keys], None),
                        extra)
                else:
                    current = Join(current, right, clause.kind,
                                   [k for k, _ in keys],
                                   [k for _, k in keys], extra)
            else:
                current = self._cross_join(current, right, clause.kind,
                                           extra)
            joined.add(source.order)

        # Any remaining multi-source conjuncts become a final filter.
        leftovers = [c for owner, items in multi.items()
                     for c in items if owner is None]
        if leftovers:
            current = _filtered(current,
                                self._bind_conjunction(leftovers, scope))
        return current

    def _cross_join(self, left: PlanNode, right: PlanNode, kind: str,
                    extra: e.Expr | None) -> PlanNode:
        """Key-less join via a constant key (used for single-row derived
        tables, the decorrelated form of scalar subqueries)."""
        left_aug = Project(left, [(n, e.Col(n)) for n in
                                  left.output_schema(self.catalog).names]
                           + [("__cross_l", e.Lit(1))])
        right_aug = Project(right, [(n, e.Col(n)) for n in
                                    right.output_schema(
                                        self.catalog).names]
                            + [("__cross_r", e.Lit(1))])
        join = Join(left_aug, right_aug, kind or "inner",
                    ["__cross_l"], ["__cross_r"], extra)
        keep = [n for n in join.output_schema(self.catalog).names
                if n not in ("__cross_l", "__cross_r")]
        return Project(join, [(n, e.Col(n)) for n in keep])

    def _classify_conjuncts(self, conjuncts: list[ast.SqlExpr],
                            scope: _Scope):
        """Split WHERE conjuncts into per-source filters and join-level
        conjuncts (keyed into a list consumed by the join builder)."""
        single: dict[int, list[ast.SqlExpr]] = {}
        multi: dict[object, list[ast.SqlExpr]] = {None: []}
        for conjunct in conjuncts:
            owners = {scope.resolve(i)[0].order
                      for i in _identifiers_in(conjunct)}
            if len(owners) == 1:
                single.setdefault(owners.pop(), []).append(conjunct)
            else:
                multi[None].append(conjunct)
        return single, multi

    def _pick_join_keys(self, multi: dict, joined: set[int],
                        new_order: int, scope: _Scope):
        """Extract equality conjuncts linking ``joined`` to the new
        source; consumed conjuncts are removed from ``multi``."""
        keys: list[tuple[str, str]] = []
        others: list[ast.SqlExpr] = []
        remaining: list[ast.SqlExpr] = []
        available = joined | {new_order}
        for conjunct in multi[None]:
            owners = {scope.resolve(i)[0].order
                      for i in _identifiers_in(conjunct)}
            if not owners <= available:
                remaining.append(conjunct)
                continue
            key = self._as_equality_key(conjunct, joined, new_order, scope)
            if key is not None:
                keys.append(key)
            else:
                others.append(conjunct)
        multi[None] = remaining
        return keys, others

    def _on_condition_keys(self, conjuncts: list[ast.SqlExpr],
                           joined: set[int], new_order: int,
                           scope: _Scope):
        keys: list[tuple[str, str]] = []
        extras: list[ast.SqlExpr] = []
        for conjunct in conjuncts:
            key = self._as_equality_key(conjunct, joined, new_order, scope)
            if key is not None:
                keys.append(key)
            else:
                extras.append(conjunct)
        return keys, extras

    def _as_equality_key(self, conjunct: ast.SqlExpr, joined: set[int],
                         new_order: int,
                         scope: _Scope) -> tuple[str, str] | None:
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.Identifier)
                and isinstance(right, ast.Identifier)):
            return None
        left_source, left_name = scope.resolve(left)
        right_source, right_name = scope.resolve(right)
        if left_source.order in joined and right_source.order == new_order:
            return left_name, right_name
        if right_source.order in joined and left_source.order == new_order:
            return right_name, left_name
        return None

    def _bind_conjunction(self, conjuncts: list[ast.SqlExpr],
                          scope: _Scope) -> e.Expr:
        bound = [self.bind_scalar(c, scope) for c in conjuncts]
        return bound[0] if len(bound) == 1 else e.And(bound)

    # ------------------------------------------------------------------
    # grouping / aggregation
    # ------------------------------------------------------------------
    def _apply_grouping(self, stmt: ast.SelectStmt, scope: _Scope,
                        plan: PlanNode) -> PlanNode:
        has_aggregates = any(
            _contains_aggregate(item.expr) for item in stmt.items
            if item.expr is not None)
        if stmt.having is not None:
            has_aggregates = True
        if not stmt.group_by and not has_aggregates:
            return self._plain_projection(stmt, scope, plan)

        # 1. group keys
        group_keys: list[tuple[str, e.Expr]] = []
        key_by_ast_key: dict[tuple, str] = {}
        for i, group_expr in enumerate(stmt.group_by):
            bound = self.bind_scalar(group_expr, scope)
            name = self._group_key_name(group_expr, stmt, bound, i)
            group_keys.append((name, bound))
            key_by_ast_key[bound.key()] = name

        # 2. aggregates (unique by canonical key)
        aggregates: list[e.AggSpec] = []
        agg_by_key: dict[tuple, str] = {}

        def register_aggregate(call: ast.FuncCall,
                               preferred: str | None) -> str:
            spec = self._bind_aggregate(call, scope, preferred
                                        or f"agg_{len(aggregates)}")
            key = spec.key()
            if key in agg_by_key:
                return agg_by_key[key]
            # Avoid name collisions with keys/earlier aggregates.
            taken = {n for n, _ in group_keys} | set(agg_by_key.values())
            name = spec.name
            suffix = 2
            while name in taken:
                name = f"{spec.name}_{suffix}"
                suffix += 1
            spec = spec.with_name(name)
            aggregates.append(spec)
            agg_by_key[key] = name
            return name

        # 3. rewrite output/having/order expressions over the aggregate.
        outputs: list[tuple[str, e.Expr]] = []
        trivial = True
        for i, item in enumerate(stmt.items):
            if item.expr is None:
                raise SqlError("SELECT * cannot be combined with GROUP BY")
            rewritten = self._rewrite_post_agg(
                item.expr, scope, key_by_ast_key, register_aggregate,
                item.alias)
            name = item.alias or self._default_name(item.expr, i)
            outputs.append((name, rewritten))
            if not (isinstance(rewritten, e.Col)
                    and rewritten.name == name):
                trivial = False

        plan = Aggregate(plan, group_keys, aggregates)
        if stmt.having is not None:
            having = self._rewrite_post_agg(stmt.having, scope,
                                            key_by_ast_key,
                                            register_aggregate, None)
            plan = _filtered(plan, having)
        agg_output_names = [n for n, _ in group_keys] \
            + [a.name for a in aggregates]
        if trivial and [n for n, _ in outputs] == agg_output_names:
            return plan
        return Project(plan, outputs)

    def _group_key_name(self, group_expr: ast.SqlExpr,
                        stmt: ast.SelectStmt, bound: e.Expr,
                        index: int) -> str:
        if isinstance(bound, e.Col):
            return bound.name
        # a select item with the same expression text provides the alias
        for item in stmt.items:
            if item.expr is not None and item.alias and \
                    _ast_equal(item.expr, group_expr):
                return item.alias
        return f"gk_{index}"

    def _bind_aggregate(self, call: ast.FuncCall, scope: _Scope,
                        name: str) -> e.AggSpec:
        func = call.name
        if func == "count" and call.is_star:
            return e.AggSpec("count_star", None, name)
        if func == "count" and call.distinct:
            arg = self.bind_scalar(call.args[0], scope)
            return e.AggSpec("count_distinct", arg, name)
        if len(call.args) != 1:
            raise SqlError(f"aggregate {func} takes one argument")
        arg = self.bind_scalar(call.args[0], scope)
        return e.AggSpec(func, arg, name)

    def _rewrite_post_agg(self, expr: ast.SqlExpr, scope: _Scope,
                          key_names: dict[tuple, str], register_aggregate,
                          preferred: str | None) -> e.Expr:
        """Bind an expression in the post-aggregation scope: aggregate
        calls become references to aggregate outputs, group-key
        subexpressions become key column references."""
        if isinstance(expr, ast.FuncCall) and expr.name in _AGG_NAMES:
            return e.Col(register_aggregate(expr, preferred))
        bound_try = None
        try:
            bound_try = self.bind_scalar(expr, scope)
        except SqlError:
            bound_try = None
        if bound_try is not None and bound_try.key() in key_names:
            return e.Col(key_names[bound_try.key()])
        if isinstance(expr, ast.Identifier):
            # Not a key and not an aggregate: invalid post-agg reference,
            # unless it names an output key directly.
            for key_name in key_names.values():
                if key_name == expr.name:
                    return e.Col(key_name)
            raise SqlError(
                f"column {expr.display()!r} must appear in GROUP BY or"
                " inside an aggregate")
        return self._rebuild_post_agg(expr, scope, key_names,
                                      register_aggregate)

    def _rebuild_post_agg(self, expr: ast.SqlExpr, scope: _Scope,
                          key_names, register_aggregate) -> e.Expr:
        recurse = lambda x: self._rewrite_post_agg(  # noqa: E731
            x, scope, key_names, register_aggregate, None)
        if isinstance(expr, ast.Binary):
            if expr.op in ("and", "or"):
                parts = [recurse(expr.left), recurse(expr.right)]
                return e.And(parts) if expr.op == "and" else e.Or(parts)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return e.Cmp(expr.op, recurse(expr.left),
                             recurse(expr.right))
            return e.Arith(expr.op, recurse(expr.left),
                           recurse(expr.right))
        if isinstance(expr, ast.Unary):
            if expr.op == "not":
                return e.Not(recurse(expr.operand))
            return e.Arith("-", e.Lit(0), recurse(expr.operand))
        if isinstance(expr, (ast.NumberLit, ast.StringLit, ast.DateLit,
                             ast.BoolLit)):
            return self.bind_scalar(expr, scope)
        if isinstance(expr, ast.FuncCall) and expr.name not in _AGG_NAMES:
            args = [recurse(a) for a in expr.args]
            return self._bind_function(expr.name, args)
        raise SqlError(
            f"unsupported expression after aggregation: {expr!r}")

    def _plain_projection(self, stmt: ast.SelectStmt, scope: _Scope,
                          plan: PlanNode) -> PlanNode:
        current_names = plan.output_schema(self.catalog).names
        outputs: list[tuple[str, e.Expr]] = []
        star = all(item.expr is None for item in stmt.items)
        if star:
            return plan
        for i, item in enumerate(stmt.items):
            if item.expr is None:
                for name in current_names:
                    outputs.append((name, e.Col(name)))
                continue
            bound = self.bind_scalar(item.expr, scope)
            name = item.alias or self._default_name(item.expr, i)
            outputs.append((name, bound))
        if [n for n, _ in outputs] == current_names and all(
                isinstance(x, e.Col) and x.name == n
                for n, x in outputs):
            return plan
        return Project(plan, outputs)

    def _default_name(self, expr: ast.SqlExpr, index: int) -> str:
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return f"{expr.name}_{index}"
        return f"col_{index}"

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def _apply_ordering(self, stmt: ast.SelectStmt,
                        plan: PlanNode) -> PlanNode:
        if not stmt.order_by:
            if stmt.limit is not None:
                return Limit(plan, stmt.limit, stmt.offset)
            return plan
        available = plan.output_schema(self.catalog).names
        keys: list[tuple[str, bool]] = []
        for item in stmt.order_by:
            name = self._order_column(item.expr, available)
            keys.append((name, item.ascending))
        if stmt.limit is not None:
            return TopN(plan, keys, stmt.limit, stmt.offset)
        return Sort(plan, keys)

    def _order_column(self, expr: ast.SqlExpr,
                      available: list[str]) -> str:
        if isinstance(expr, ast.Identifier) and expr.qualifier is None \
                and expr.name in available:
            return expr.name
        if isinstance(expr, ast.Identifier) and expr.qualifier is not None:
            qualified = f"{expr.qualifier}_{expr.name}"
            if qualified in available:
                return qualified
            if expr.name in available:
                return expr.name
        raise SqlError(
            f"ORDER BY must reference an output column; have {available}")

    # ------------------------------------------------------------------
    # scalar expression binding
    # ------------------------------------------------------------------
    def bind_scalar(self, expr: ast.SqlExpr, scope: _Scope) -> e.Expr:
        if isinstance(expr, ast.Identifier):
            _, plan_name = scope.resolve(expr)
            return e.Col(plan_name)
        if isinstance(expr, ast.NumberLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.StringLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.DateLit):
            return e.Lit.date(expr.iso)
        if isinstance(expr, ast.BoolLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.Unary):
            if expr.op == "not":
                return e.Not(self.bind_scalar(expr.operand, scope))
            operand = self.bind_scalar(expr.operand, scope)
            if isinstance(operand, e.Lit) and \
                    isinstance(operand.value, (int, float)):
                return e.Lit(-operand.value)
            return e.Arith("-", e.Lit(0), operand)
        if isinstance(expr, ast.Binary):
            left = self.bind_scalar(expr.left, scope)
            right = self.bind_scalar(expr.right, scope)
            if expr.op == "and":
                return e.And([left, right])
            if expr.op == "or":
                return e.Or([left, right])
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return e.Cmp(expr.op, left, right)
            return e.Arith(expr.op, left, right)
        if isinstance(expr, ast.BetweenExpr):
            operand = self.bind_scalar(expr.operand, scope)
            bounds = e.And([
                e.Cmp(">=", operand, self.bind_scalar(expr.low, scope)),
                e.Cmp("<=", operand, self.bind_scalar(expr.high, scope)),
            ])
            return e.Not(bounds) if expr.negated else bounds
        if isinstance(expr, ast.InExpr):
            operand = self.bind_scalar(expr.operand, scope)
            values = []
            for value in expr.values:
                bound = self.bind_scalar(value, scope)
                if not isinstance(bound, e.Lit):
                    raise SqlError("IN list values must be literals")
                values.append(bound.value)
            membership = e.InList(operand, values)
            return e.Not(membership) if expr.negated else membership
        if isinstance(expr, ast.LikeExpr):
            operand = self.bind_scalar(expr.operand, scope)
            return e.Like(operand, expr.pattern, expr.negated)
        if isinstance(expr, ast.CaseExpr):
            whens = [(self.bind_scalar(c, scope),
                      self.bind_scalar(v, scope))
                     for c, v in expr.whens]
            if expr.otherwise is not None:
                otherwise = self.bind_scalar(expr.otherwise, scope)
            else:
                otherwise = _zero_like(whens[0][1])
            return e.Case(whens, otherwise)
        if isinstance(expr, ast.FuncCall):
            if expr.name in _AGG_NAMES:
                raise SqlError(
                    f"aggregate {expr.name}() not allowed here")
            args = [self.bind_scalar(a, scope) for a in expr.args]
            return self._bind_function(expr.name, args)
        raise SqlError(f"unsupported expression {expr!r}")

    def _bind_function(self, name: str, args: list[e.Expr]) -> e.Expr:
        if name == "substring":
            name = "substr"
        if name not in _SCALAR_FUNCS:
            raise SqlError(f"unknown function {name!r}")
        return e.Func(name, args)


# ----------------------------------------------------------------------
# AST utilities
# ----------------------------------------------------------------------
def _split_conjuncts_ast(expr: ast.SqlExpr | None) -> list[ast.SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return _split_conjuncts_ast(expr.left) \
            + _split_conjuncts_ast(expr.right)
    return [expr]


def _identifiers_in(expr: ast.SqlExpr):
    if isinstance(expr, ast.Identifier):
        yield expr
    elif isinstance(expr, ast.Binary):
        yield from _identifiers_in(expr.left)
        yield from _identifiers_in(expr.right)
    elif isinstance(expr, ast.Unary):
        yield from _identifiers_in(expr.operand)
    elif isinstance(expr, ast.BetweenExpr):
        yield from _identifiers_in(expr.operand)
        yield from _identifiers_in(expr.low)
        yield from _identifiers_in(expr.high)
    elif isinstance(expr, ast.InExpr):
        yield from _identifiers_in(expr.operand)
        for value in expr.values:
            yield from _identifiers_in(value)
    elif isinstance(expr, ast.LikeExpr):
        yield from _identifiers_in(expr.operand)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            yield from _identifiers_in(arg)
    elif isinstance(expr, ast.CaseExpr):
        for condition, value in expr.whens:
            yield from _identifiers_in(condition)
            yield from _identifiers_in(value)
        if expr.otherwise is not None:
            yield from _identifiers_in(expr.otherwise)


def _all_expressions(stmt: ast.SelectStmt):
    for item in stmt.items:
        if item.expr is not None:
            yield item.expr
    if stmt.where is not None:
        yield stmt.where
    yield from stmt.group_by
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr
    for join in stmt.joins:
        yield join.condition


def _contains_aggregate(expr: ast.SqlExpr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.FuncCall) and expr.name in _AGG_NAMES:
        return True
    return any(_contains_aggregate(c) for c in _ast_children(expr))


def _ast_children(expr: ast.SqlExpr):
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.BetweenExpr):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.InExpr):
        return [expr.operand] + list(expr.values)
    if isinstance(expr, ast.LikeExpr):
        return [expr.operand]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.CaseExpr):
        out = []
        for condition, value in expr.whens:
            out.extend([condition, value])
        if expr.otherwise is not None:
            out.append(expr.otherwise)
        return out
    return []


def _ast_equal(a: ast.SqlExpr, b: ast.SqlExpr) -> bool:
    return repr(a) == repr(b)   # dataclass reprs are structural


def _literal_value(expr: ast.SqlExpr):
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.StringLit):
        return expr.value
    if isinstance(expr, ast.DateLit):
        from ..columnar.types import date_to_days
        return date_to_days(expr.iso)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_literal_value(expr.operand)
    raise SqlError("table function arguments must be literals")


def _zero_like(value: e.Expr) -> e.Expr:
    """Explicit CASE default (this engine has no NULLs)."""
    return e.Lit(0)


def _is_single_row(plan: PlanNode) -> bool:
    """Conservative single-row detection: a scalar aggregate (possibly
    under projections/limits) produces exactly one row."""
    if isinstance(plan, Aggregate):
        return not plan.group_keys
    if isinstance(plan, (Project, Limit, Select)):
        return _is_single_row(plan.children[0])
    return False


def source_scope_check(scope: _Scope) -> _Scope:
    aliases = [s.alias for s in scope.sources]
    if len(set(aliases)) != len(aliases):
        raise SqlError(f"duplicate table aliases: {aliases}")
    return scope
