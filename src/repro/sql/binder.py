"""Bind a parsed SELECT statement to a logical plan.

The binder doubles as this system's (deliberately simple) optimizer: it
produces the *canonical* plan shape the recycler graph matches on:

* single-table WHERE conjuncts are pushed below joins (one ``Select``
  directly above each source);
* comma-joins become a left-deep tree in FROM order; equality conjuncts
  between two sources become hash-join keys, remaining multi-source
  conjuncts become the join's extra predicate or a ``Select`` above it;
* aggregates in the SELECT list / HAVING are extracted into an
  ``Aggregate`` node with deterministic output names, followed by an
  optional projection for post-aggregation arithmetic;
* ORDER BY + LIMIT fuse into the heap-based ``TopN`` operator;
* subqueries are *decorrelated before binding*: ``[NOT] EXISTS`` and
  ``[NOT] IN (SELECT …)`` conjuncts become semi/anti join clauses
  against a hidden derived table, and scalar subqueries become hidden
  single-row derived tables cross-joined into FROM — so every spelling
  flows through the same join machinery and the recycler's matching,
  optimizer, and subsumption logic never see a subquery node.

Output column names are made unique deterministically (qualifying with
the source alias only on collision), so structurally identical query
texts always produce structurally identical plans — the property the
recycler's exact matching relies on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..columnar.catalog import CatalogView
from ..errors import SqlError
from ..expr import nodes as e
from ..plan.logical import (Aggregate, Distinct, Join, Limit, PlanNode,
                            Project, Scan, Select, Sort, TableFunctionScan,
                            TopN, UnionAll)
from . import ast

_AGG_NAMES = {"sum", "count", "avg", "min", "max"}

_SCALAR_FUNCS = {"year", "month", "yearmonth", "abs", "round", "floor",
                 "length", "upper", "lower", "substr", "substring",
                 "startswith", "min2", "max2", "bin", "extract_days"}


def _filtered(plan: PlanNode, predicate: e.Expr) -> PlanNode:
    """Place a filter above ``plan``, merging into an existing ``Select``.

    A derived table whose subquery ends in a WHERE would otherwise bind
    an outer filter as ``Select(Select(...))`` while the textually merged
    query binds one ``Select`` with an AND — two shapes for one meaning,
    which the recycler then caches twice.  Constructing through this
    helper keeps the binder's output canonical: one ``Select`` per spot,
    conjuncts combined (``And`` flattens; its key ordering makes the
    conjunct order irrelevant to the fingerprint)."""
    if isinstance(plan, Select):
        return Select(plan.child, e.And([plan.predicate, predicate]))
    return Select(plan, predicate)


def bind(stmt: ast.SelectStmt, catalog: CatalogView) -> PlanNode:
    """Entry point: statement -> logical plan."""
    plan = _Binder(catalog).bind_select(stmt)
    if stmt.union_all:
        parts = [plan] + [_Binder(catalog).bind_select(s)
                          for s in stmt.union_all]
        plan = UnionAll(parts)
    return plan


@dataclass
class _Source:
    """One bound FROM item."""

    alias: str
    plan: PlanNode
    #: source column name -> plan output name (after de-collision)
    names: dict[str, str]
    order: int

    def resolve(self, column: str) -> str | None:
        return self.names.get(column)


@dataclass
class _Scope:
    sources: list[_Source] = field(default_factory=list)

    def resolve(self, ident: ast.Identifier) -> tuple[_Source, str]:
        if ident.qualifier is not None:
            for source in self.sources:
                if source.alias == ident.qualifier:
                    plan_name = source.resolve(ident.name)
                    if plan_name is None:
                        raise SqlError(
                            f"column {ident.display()!r} not found in"
                            f" {ident.qualifier!r}")
                    return source, plan_name
            raise SqlError(f"unknown table alias {ident.qualifier!r}")
        hits = [(source, source.resolve(ident.name))
                for source in self.sources
                if source.resolve(ident.name) is not None]
        if not hits:
            raise SqlError(f"unknown column {ident.name!r}")
        if len(hits) > 1:
            owners = [s.alias for s, _ in hits]
            raise SqlError(
                f"ambiguous column {ident.name!r} (in {owners})")
        return hits[0]


class _Binder:
    def __init__(self, catalog: CatalogView) -> None:
        self.catalog = catalog

    # ==================================================================
    def bind_select(self, stmt: ast.SelectStmt) -> PlanNode:
        stmt = _decorrelate(stmt)
        scope = self._bind_from(stmt)
        plan = self._build_join_tree(stmt, scope)
        plan = self._apply_grouping(stmt, scope, plan)
        if stmt.distinct:
            plan = Distinct(plan)
        plan = self._apply_ordering(stmt, plan)
        return plan

    # ------------------------------------------------------------------
    # FROM binding with deterministic name de-collision
    # ------------------------------------------------------------------
    def _bind_from(self, stmt: ast.SelectStmt) -> _Scope:
        refs = list(stmt.from_tables) + [j.table for j in stmt.joins]
        needed = self._needed_columns(stmt, refs)
        # A bare ``*`` select item needs every column of every source,
        # not just the ones referenced by other expressions.
        star = any(item.expr is None for item in stmt.items)
        scope = _Scope()
        used_names: set[str] = set()
        for order, ref in enumerate(refs):
            source = self._bind_table_ref(ref, needed, used_names, order,
                                          select_star=star)
            scope.sources.append(source)
            used_names.update(source.names.values())
        return source_scope_check(scope)

    def _bind_table_ref(self, ref: ast.TableRef, needed: dict,
                        used_names: set[str], order: int,
                        select_star: bool = False) -> _Source:
        if ref.subquery is not None:
            plan = bind(ref.subquery, self.catalog)
            columns = plan.output_schema(self.catalog).names
            alias = ref.alias or f"__dt{order}"
        elif ref.function is not None:
            args = [_literal_value(a) for a in ref.function_args]
            plan = TableFunctionScan(ref.function, args)
            columns = plan.output_schema(self.catalog).names
            alias = ref.alias or ref.function
        else:
            assert ref.name is not None
            alias = ref.alias or ref.name
            table_cols = set(
                self.catalog.table_entry(ref.name).table.schema.names)
            wanted = needed.get(alias) or needed.get(ref.name) or set()
            star = needed.get("*", set())
            if select_star:
                columns = sorted(table_cols)
            else:
                columns = sorted((wanted | star) & table_cols) or \
                    sorted(table_cols)
            unresolved = wanted - table_cols
            if unresolved:
                raise SqlError(
                    f"columns {sorted(unresolved)} not in table"
                    f" {ref.name!r}")
            plan = Scan(ref.name, columns)
        # De-collide output names deterministically.
        names: dict[str, str] = {}
        renames: list[tuple[str, str]] = []
        for column in columns:
            plan_name = column
            if plan_name in used_names:
                plan_name = f"{alias}_{column}"
            suffix = 2
            while plan_name in used_names or plan_name in names.values():
                plan_name = f"{alias}_{column}_{suffix}"
                suffix += 1
            names[column] = plan_name
            if plan_name != column:
                renames.append((column, plan_name))
        if renames:
            outputs = [(names[c], e.Col(c)) for c in columns]
            plan = Project(plan, outputs)
        return _Source(alias=alias, plan=plan, names=names, order=order)

    def _needed_columns(self, stmt: ast.SelectStmt,
                        refs: list[ast.TableRef]) -> dict[str, set[str]]:
        """Which columns each base table must scan.

        Returns alias -> column set; unqualified identifiers land in the
        pseudo-key ``"*"`` and are offered to every table that has them.
        """
        needed: dict[str, set[str]] = {}

        def note(ident: ast.Identifier) -> None:
            key = ident.qualifier or "*"
            needed.setdefault(key, set()).add(ident.name)

        for expr in _all_expressions(stmt):
            for ident in _identifiers_in(expr):
                note(ident)
        return needed

    # ------------------------------------------------------------------
    # join tree construction
    # ------------------------------------------------------------------
    def _build_join_tree(self, stmt: ast.SelectStmt,
                         scope: _Scope) -> PlanNode:
        comma_sources = scope.sources[:len(stmt.from_tables)]
        join_sources = scope.sources[len(stmt.from_tables):]

        conjuncts = _split_conjuncts_ast(stmt.where)
        single, multi = self._classify_conjuncts(conjuncts, scope)

        # Push single-source filters directly above their source.
        filtered: dict[int, PlanNode] = {}
        for source in scope.sources:
            plan = source.plan
            mine = single.get(source.order, [])
            if mine:
                predicate = self._bind_conjunction(mine, scope)
                plan = _filtered(plan, predicate)
            filtered[source.order] = plan

        current = filtered[comma_sources[0].order]
        joined = {comma_sources[0].order}

        for source in comma_sources[1:]:
            right = filtered[source.order]
            keys, others = self._pick_join_keys(multi, joined,
                                                source.order, scope)
            if not keys:
                extra = self._bind_conjunction(others, scope) if others \
                    else None
                if extra is not None or _is_single_row(right):
                    current = self._cross_join(current, right, "inner",
                                               extra)
                else:
                    raise SqlError(
                        f"no join condition connects {source.alias!r}")
            else:
                current = Join(current, right, "inner",
                               [k for k, _ in keys],
                               [k for _, k in keys], None)
                # Leftover conjuncts become an explicit Select so the plan
                # keeps the σ-above-join shape the proactive rules target.
                if others:
                    current = _filtered(
                        current, self._bind_conjunction(others, scope))
            joined.add(source.order)

        for clause, source in zip(stmt.joins, join_sources):
            on_conjuncts = _split_conjuncts_ast(clause.condition)
            keys, extras = self._on_condition_keys(on_conjuncts, joined,
                                                   source.order, scope)
            right = filtered[source.order]
            extra = self._bind_conjunction(extras, scope) if extras \
                else None
            if keys:
                if clause.kind == "inner" and extra is not None:
                    current = _filtered(
                        Join(current, right, "inner",
                             [k for k, _ in keys],
                             [k for _, k in keys], None),
                        extra)
                else:
                    current = Join(current, right, clause.kind,
                                   [k for k, _ in keys],
                                   [k for _, k in keys], extra)
            else:
                current = self._cross_join(current, right, clause.kind,
                                           extra)
            joined.add(source.order)

        # Any remaining multi-source conjuncts become a final filter.
        leftovers = [c for owner, items in multi.items()
                     for c in items if owner is None]
        if leftovers:
            current = _filtered(current,
                                self._bind_conjunction(leftovers, scope))
        return current

    def _cross_join(self, left: PlanNode, right: PlanNode, kind: str,
                    extra: e.Expr | None) -> PlanNode:
        """Key-less join via a constant key (used for single-row derived
        tables, the decorrelated form of scalar subqueries)."""
        left_aug = Project(left, [(n, e.Col(n)) for n in
                                  left.output_schema(self.catalog).names]
                           + [("__cross_l", e.Lit(1))])
        right_aug = Project(right, [(n, e.Col(n)) for n in
                                    right.output_schema(
                                        self.catalog).names]
                            + [("__cross_r", e.Lit(1))])
        join = Join(left_aug, right_aug, kind or "inner",
                    ["__cross_l"], ["__cross_r"], extra)
        keep = [n for n in join.output_schema(self.catalog).names
                if n not in ("__cross_l", "__cross_r")]
        return Project(join, [(n, e.Col(n)) for n in keep])

    def _classify_conjuncts(self, conjuncts: list[ast.SqlExpr],
                            scope: _Scope):
        """Split WHERE conjuncts into per-source filters and join-level
        conjuncts (keyed into a list consumed by the join builder)."""
        single: dict[int, list[ast.SqlExpr]] = {}
        multi: dict[object, list[ast.SqlExpr]] = {None: []}
        for conjunct in conjuncts:
            owners = {scope.resolve(i)[0].order
                      for i in _identifiers_in(conjunct)}
            if len(owners) == 1:
                single.setdefault(owners.pop(), []).append(conjunct)
            else:
                multi[None].append(conjunct)
        return single, multi

    def _pick_join_keys(self, multi: dict, joined: set[int],
                        new_order: int, scope: _Scope):
        """Extract equality conjuncts linking ``joined`` to the new
        source; consumed conjuncts are removed from ``multi``."""
        keys: list[tuple[str, str]] = []
        others: list[ast.SqlExpr] = []
        remaining: list[ast.SqlExpr] = []
        available = joined | {new_order}
        for conjunct in multi[None]:
            owners = {scope.resolve(i)[0].order
                      for i in _identifiers_in(conjunct)}
            if not owners <= available:
                remaining.append(conjunct)
                continue
            key = self._as_equality_key(conjunct, joined, new_order, scope)
            if key is not None:
                keys.append(key)
            else:
                others.append(conjunct)
        multi[None] = remaining
        return keys, others

    def _on_condition_keys(self, conjuncts: list[ast.SqlExpr],
                           joined: set[int], new_order: int,
                           scope: _Scope):
        keys: list[tuple[str, str]] = []
        extras: list[ast.SqlExpr] = []
        for conjunct in conjuncts:
            key = self._as_equality_key(conjunct, joined, new_order, scope)
            if key is not None:
                keys.append(key)
            else:
                extras.append(conjunct)
        return keys, extras

    def _as_equality_key(self, conjunct: ast.SqlExpr, joined: set[int],
                         new_order: int,
                         scope: _Scope) -> tuple[str, str] | None:
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.Identifier)
                and isinstance(right, ast.Identifier)):
            return None
        left_source, left_name = scope.resolve(left)
        right_source, right_name = scope.resolve(right)
        if left_source.order in joined and right_source.order == new_order:
            return left_name, right_name
        if right_source.order in joined and left_source.order == new_order:
            return right_name, left_name
        return None

    def _bind_conjunction(self, conjuncts: list[ast.SqlExpr],
                          scope: _Scope) -> e.Expr:
        bound = [self.bind_scalar(c, scope) for c in conjuncts]
        return bound[0] if len(bound) == 1 else e.And(bound)

    # ------------------------------------------------------------------
    # grouping / aggregation
    # ------------------------------------------------------------------
    def _apply_grouping(self, stmt: ast.SelectStmt, scope: _Scope,
                        plan: PlanNode) -> PlanNode:
        has_aggregates = any(
            _contains_aggregate(item.expr) for item in stmt.items
            if item.expr is not None)
        if stmt.having is not None:
            has_aggregates = True
        if not stmt.group_by and not has_aggregates:
            return self._plain_projection(stmt, scope, plan)

        # 1. group keys
        group_keys: list[tuple[str, e.Expr]] = []
        key_by_ast_key: dict[tuple, str] = {}
        for i, group_expr in enumerate(stmt.group_by):
            bound = self.bind_scalar(group_expr, scope)
            name = self._group_key_name(group_expr, stmt, bound, i)
            group_keys.append((name, bound))
            key_by_ast_key[bound.key()] = name

        # 2. aggregates (unique by canonical key)
        aggregates: list[e.AggSpec] = []
        agg_by_key: dict[tuple, str] = {}

        def register_aggregate(call: ast.FuncCall,
                               preferred: str | None) -> str:
            spec = self._bind_aggregate(call, scope, preferred
                                        or f"agg_{len(aggregates)}")
            key = spec.key()
            if key in agg_by_key:
                return agg_by_key[key]
            # Avoid name collisions with keys/earlier aggregates.
            taken = {n for n, _ in group_keys} | set(agg_by_key.values())
            name = spec.name
            suffix = 2
            while name in taken:
                name = f"{spec.name}_{suffix}"
                suffix += 1
            spec = spec.with_name(name)
            aggregates.append(spec)
            agg_by_key[key] = name
            return name

        # 3. rewrite output/having/order expressions over the aggregate.
        outputs: list[tuple[str, e.Expr]] = []
        trivial = True
        for i, item in enumerate(stmt.items):
            if item.expr is None:
                raise SqlError("SELECT * cannot be combined with GROUP BY")
            rewritten = self._rewrite_post_agg(
                item.expr, scope, key_by_ast_key, register_aggregate,
                item.alias)
            name = item.alias or self._default_name(item.expr, i)
            outputs.append((name, rewritten))
            if not (isinstance(rewritten, e.Col)
                    and rewritten.name == name):
                trivial = False

        plan = Aggregate(plan, group_keys, aggregates)
        if stmt.having is not None:
            having = self._rewrite_post_agg(stmt.having, scope,
                                            key_by_ast_key,
                                            register_aggregate, None)
            plan = _filtered(plan, having)
        agg_output_names = [n for n, _ in group_keys] \
            + [a.name for a in aggregates]
        if trivial and [n for n, _ in outputs] == agg_output_names:
            return plan
        return Project(plan, outputs)

    def _group_key_name(self, group_expr: ast.SqlExpr,
                        stmt: ast.SelectStmt, bound: e.Expr,
                        index: int) -> str:
        if isinstance(bound, e.Col):
            return bound.name
        # a select item with the same expression text provides the alias
        for item in stmt.items:
            if item.expr is not None and item.alias and \
                    _ast_equal(item.expr, group_expr):
                return item.alias
        return f"gk_{index}"

    def _bind_aggregate(self, call: ast.FuncCall, scope: _Scope,
                        name: str) -> e.AggSpec:
        func = call.name
        if func == "count" and call.is_star:
            return e.AggSpec("count_star", None, name)
        if func == "count" and call.distinct:
            arg = self.bind_scalar(call.args[0], scope)
            return e.AggSpec("count_distinct", arg, name)
        if len(call.args) != 1:
            raise SqlError(f"aggregate {func} takes one argument")
        arg = self.bind_scalar(call.args[0], scope)
        return e.AggSpec(func, arg, name)

    def _rewrite_post_agg(self, expr: ast.SqlExpr, scope: _Scope,
                          key_names: dict[tuple, str], register_aggregate,
                          preferred: str | None) -> e.Expr:
        """Bind an expression in the post-aggregation scope: aggregate
        calls become references to aggregate outputs, group-key
        subexpressions become key column references."""
        if isinstance(expr, ast.FuncCall) and expr.name in _AGG_NAMES:
            return e.Col(register_aggregate(expr, preferred))
        bound_try = None
        try:
            bound_try = self.bind_scalar(expr, scope)
        except SqlError:
            bound_try = None
        if bound_try is not None and bound_try.key() in key_names:
            return e.Col(key_names[bound_try.key()])
        if isinstance(expr, ast.Identifier):
            # Not a key and not an aggregate: invalid post-agg reference,
            # unless it names an output key directly.
            for key_name in key_names.values():
                if key_name == expr.name:
                    return e.Col(key_name)
            raise SqlError(
                f"column {expr.display()!r} must appear in GROUP BY or"
                " inside an aggregate")
        return self._rebuild_post_agg(expr, scope, key_names,
                                      register_aggregate)

    def _rebuild_post_agg(self, expr: ast.SqlExpr, scope: _Scope,
                          key_names, register_aggregate) -> e.Expr:
        recurse = lambda x: self._rewrite_post_agg(  # noqa: E731
            x, scope, key_names, register_aggregate, None)
        if isinstance(expr, ast.Binary):
            if expr.op in ("and", "or"):
                parts = [recurse(expr.left), recurse(expr.right)]
                return e.And(parts) if expr.op == "and" else e.Or(parts)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return e.Cmp(expr.op, recurse(expr.left),
                             recurse(expr.right))
            return e.Arith(expr.op, recurse(expr.left),
                           recurse(expr.right))
        if isinstance(expr, ast.Unary):
            if expr.op == "not":
                return e.Not(recurse(expr.operand))
            return e.Arith("-", e.Lit(0), recurse(expr.operand))
        if isinstance(expr, (ast.NumberLit, ast.StringLit, ast.DateLit,
                             ast.BoolLit)):
            return self.bind_scalar(expr, scope)
        if isinstance(expr, ast.FuncCall) and expr.name not in _AGG_NAMES:
            args = [recurse(a) for a in expr.args]
            return self._bind_function(expr.name, args)
        raise SqlError(
            f"unsupported expression after aggregation: {expr!r}")

    def _plain_projection(self, stmt: ast.SelectStmt, scope: _Scope,
                          plan: PlanNode) -> PlanNode:
        current_names = plan.output_schema(self.catalog).names
        outputs: list[tuple[str, e.Expr]] = []
        star = all(item.expr is None for item in stmt.items)
        if star:
            return plan
        for i, item in enumerate(stmt.items):
            if item.expr is None:
                for name in current_names:
                    outputs.append((name, e.Col(name)))
                continue
            bound = self.bind_scalar(item.expr, scope)
            name = item.alias or self._default_name(item.expr, i)
            outputs.append((name, bound))
        if [n for n, _ in outputs] == current_names and all(
                isinstance(x, e.Col) and x.name == n
                for n, x in outputs):
            return plan
        return Project(plan, outputs)

    def _default_name(self, expr: ast.SqlExpr, index: int) -> str:
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return f"{expr.name}_{index}"
        return f"col_{index}"

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def _apply_ordering(self, stmt: ast.SelectStmt,
                        plan: PlanNode) -> PlanNode:
        if not stmt.order_by:
            if stmt.limit is not None:
                return Limit(plan, stmt.limit, stmt.offset)
            return plan
        available = plan.output_schema(self.catalog).names
        keys: list[tuple[str, bool]] = []
        for item in stmt.order_by:
            name = self._order_column(item.expr, available)
            keys.append((name, item.ascending))
        if stmt.limit is not None:
            return TopN(plan, keys, stmt.limit, stmt.offset)
        return Sort(plan, keys)

    def _order_column(self, expr: ast.SqlExpr,
                      available: list[str]) -> str:
        if isinstance(expr, ast.Identifier) and expr.qualifier is None \
                and expr.name in available:
            return expr.name
        if isinstance(expr, ast.Identifier) and expr.qualifier is not None:
            qualified = f"{expr.qualifier}_{expr.name}"
            if qualified in available:
                return qualified
            if expr.name in available:
                return expr.name
        raise SqlError(
            f"ORDER BY must reference an output column; have {available}")

    # ------------------------------------------------------------------
    # scalar expression binding
    # ------------------------------------------------------------------
    def bind_scalar(self, expr: ast.SqlExpr, scope: _Scope) -> e.Expr:
        if isinstance(expr, ast.Identifier):
            _, plan_name = scope.resolve(expr)
            return e.Col(plan_name)
        if isinstance(expr, ast.NumberLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.StringLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.DateLit):
            return e.Lit.date(expr.iso)
        if isinstance(expr, ast.BoolLit):
            return e.Lit(expr.value)
        if isinstance(expr, ast.Unary):
            if expr.op == "not":
                return e.Not(self.bind_scalar(expr.operand, scope))
            operand = self.bind_scalar(expr.operand, scope)
            if isinstance(operand, e.Lit) and \
                    isinstance(operand.value, (int, float)):
                return e.Lit(-operand.value)
            return e.Arith("-", e.Lit(0), operand)
        if isinstance(expr, ast.Binary):
            left = self.bind_scalar(expr.left, scope)
            right = self.bind_scalar(expr.right, scope)
            if expr.op == "and":
                return e.And([left, right])
            if expr.op == "or":
                return e.Or([left, right])
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return e.Cmp(expr.op, left, right)
            return e.Arith(expr.op, left, right)
        if isinstance(expr, ast.BetweenExpr):
            operand = self.bind_scalar(expr.operand, scope)
            bounds = e.And([
                e.Cmp(">=", operand, self.bind_scalar(expr.low, scope)),
                e.Cmp("<=", operand, self.bind_scalar(expr.high, scope)),
            ])
            return e.Not(bounds) if expr.negated else bounds
        if isinstance(expr, ast.InExpr):
            operand = self.bind_scalar(expr.operand, scope)
            values = []
            for value in expr.values:
                bound = self.bind_scalar(value, scope)
                if not isinstance(bound, e.Lit):
                    raise SqlError("IN list values must be literals")
                values.append(bound.value)
            # negation lives inside InList (not a Not wrapper) so the
            # NaN-excluding NOT IN semantics apply and the fingerprint
            # distinguishes the two forms.
            return e.InList(operand, values, expr.negated)
        if isinstance(expr, ast.LikeExpr):
            operand = self.bind_scalar(expr.operand, scope)
            return e.Like(operand, expr.pattern, expr.negated)
        if isinstance(expr, ast.CaseExpr):
            whens = [(self.bind_scalar(c, scope),
                      self.bind_scalar(v, scope))
                     for c, v in expr.whens]
            if expr.otherwise is not None:
                otherwise = self.bind_scalar(expr.otherwise, scope)
            else:
                otherwise = _zero_like(whens[0][1])
            return e.Case(whens, otherwise)
        if isinstance(expr, ast.FuncCall):
            if expr.name in _AGG_NAMES:
                raise SqlError(
                    f"aggregate {expr.name}() not allowed here")
            args = [self.bind_scalar(a, scope) for a in expr.args]
            return self._bind_function(expr.name, args)
        if isinstance(expr, (ast.ExistsExpr, ast.InSubquery)):
            raise SqlError(
                "EXISTS / IN (SELECT ...) is only supported as a"
                " top-level WHERE conjunct")
        if isinstance(expr, ast.ScalarSubquery):
            raise SqlError(
                "scalar subqueries are not supported in this position")
        raise SqlError(f"unsupported expression {expr!r}")

    def _bind_function(self, name: str, args: list[e.Expr]) -> e.Expr:
        if name == "substring":
            name = "substr"
        if name not in _SCALAR_FUNCS:
            raise SqlError(f"unknown function {name!r}")
        return e.Func(name, args)


# ----------------------------------------------------------------------
# AST utilities
# ----------------------------------------------------------------------
def _split_conjuncts_ast(expr: ast.SqlExpr | None) -> list[ast.SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return _split_conjuncts_ast(expr.left) \
            + _split_conjuncts_ast(expr.right)
    return [expr]


def _identifiers_in(expr: ast.SqlExpr):
    if isinstance(expr, ast.Identifier):
        yield expr
    elif isinstance(expr, ast.Binary):
        yield from _identifiers_in(expr.left)
        yield from _identifiers_in(expr.right)
    elif isinstance(expr, ast.Unary):
        yield from _identifiers_in(expr.operand)
    elif isinstance(expr, ast.BetweenExpr):
        yield from _identifiers_in(expr.operand)
        yield from _identifiers_in(expr.low)
        yield from _identifiers_in(expr.high)
    elif isinstance(expr, ast.InExpr):
        yield from _identifiers_in(expr.operand)
        for value in expr.values:
            yield from _identifiers_in(value)
    elif isinstance(expr, ast.LikeExpr):
        yield from _identifiers_in(expr.operand)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            yield from _identifiers_in(arg)
    elif isinstance(expr, ast.CaseExpr):
        for condition, value in expr.whens:
            yield from _identifiers_in(condition)
            yield from _identifiers_in(value)
        if expr.otherwise is not None:
            yield from _identifiers_in(expr.otherwise)
    elif isinstance(expr, ast.InSubquery):
        # the subquery body is a separate scope; only the probe operand
        # references the enclosing one.
        yield from _identifiers_in(expr.operand)
    # ExistsExpr / ScalarSubquery reference nothing in this scope.


def _all_expressions(stmt: ast.SelectStmt):
    for item in stmt.items:
        if item.expr is not None:
            yield item.expr
    if stmt.where is not None:
        yield stmt.where
    yield from stmt.group_by
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr
    for join in stmt.joins:
        if join.condition is not None:
            yield join.condition


def _contains_aggregate(expr: ast.SqlExpr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.FuncCall) and expr.name in _AGG_NAMES:
        return True
    return any(_contains_aggregate(c) for c in _ast_children(expr))


def _ast_children(expr: ast.SqlExpr):
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.BetweenExpr):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.InExpr):
        return [expr.operand] + list(expr.values)
    if isinstance(expr, ast.LikeExpr):
        return [expr.operand]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.CaseExpr):
        out = []
        for condition, value in expr.whens:
            out.extend([condition, value])
        if expr.otherwise is not None:
            out.append(expr.otherwise)
        return out
    if isinstance(expr, ast.InSubquery):
        return [expr.operand]
    # ExistsExpr / ScalarSubquery: the nested SELECT is its own scope,
    # never walked as a child expression.
    return []


# ----------------------------------------------------------------------
# subquery decorrelation (AST -> AST, before binding)
# ----------------------------------------------------------------------
_SUBQUERY_NODES = (ast.ExistsExpr, ast.InSubquery, ast.ScalarSubquery)


def _walk_ast(expr: ast.SqlExpr):
    yield expr
    for child in _ast_children(expr):
        yield from _walk_ast(child)


def _has_subqueries(stmt: ast.SelectStmt) -> bool:
    return any(isinstance(node, _SUBQUERY_NODES)
               for expr in _all_expressions(stmt)
               for node in _walk_ast(expr))


def _and_chain(conjuncts: list[ast.SqlExpr]) -> ast.SqlExpr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.Binary("and", result, conjunct)
    return result


def _decorrelate(stmt: ast.SelectStmt) -> ast.SelectStmt:
    """Rewrite subquery expressions into joins / derived tables.

    ``[NOT] EXISTS`` and ``[NOT] IN (SELECT …)`` conjuncts in WHERE
    become semi/anti :class:`ast.JoinClause` entries against a hidden
    derived table (correlated equality conjuncts are pulled out of the
    subquery's WHERE into the join condition); scalar subqueries —
    required to be single-row aggregates — become hidden derived tables
    in FROM, cross-joined by the existing single-row machinery.  The
    result is a plain SELECT the binder already knows how to
    canonicalize, so equivalent subquery spellings share fingerprints
    with their join spellings.  The input statement is never mutated.
    """
    if not _has_subqueries(stmt):
        return stmt
    stmt = copy.deepcopy(stmt)
    state = _Decorrelator(stmt)
    kept: list[ast.SqlExpr] = []
    for conjunct in _split_conjuncts_ast(stmt.where):
        kept.extend(state.rewrite_conjunct(conjunct))
    kept = [state.rewrite_scalars(c) for c in kept]
    stmt.where = _and_chain(kept)
    stmt.items = [ast.SelectItem(state.rewrite_scalars(item.expr),
                                 item.alias)
                  if item.expr is not None else item
                  for item in stmt.items]
    stmt.group_by = [state.rewrite_scalars(g) for g in stmt.group_by]
    if stmt.having is not None:
        stmt.having = state.rewrite_scalars(stmt.having)
    return stmt


class _Decorrelator:
    """Mutable rewrite state over one (deep-copied) SELECT statement."""

    def __init__(self, stmt: ast.SelectStmt) -> None:
        self.stmt = stmt
        self._counter = 0

    def _fresh(self) -> int:
        n = self._counter
        self._counter += 1
        return n

    # -- WHERE conjuncts ----------------------------------------------
    def rewrite_conjunct(self,
                         conjunct: ast.SqlExpr) -> list[ast.SqlExpr]:
        """Turn an EXISTS / IN-subquery conjunct into a join clause;
        returns the conjuncts that remain in WHERE."""
        node: ast.SqlExpr = conjunct
        negated = False
        while isinstance(node, ast.Unary) and node.op == "not":
            node = node.operand
            negated = not negated
        if isinstance(node, ast.ExistsExpr):
            self._add_exists_join(node.subquery,
                                  negated ^ node.negated)
            return []
        if isinstance(node, ast.InSubquery):
            return self._add_in_join(node, negated ^ node.negated)
        return [conjunct]

    def _add_exists_join(self, sub: ast.SelectStmt,
                         negated: bool) -> None:
        kind = "anti" if negated else "semi"
        n = self._fresh()
        alias = f"__sq{n}"
        _check_subquery(sub, "EXISTS")
        on, items = self._pull_correlation(sub, alias, n)
        # EXISTS only asks whether rows exist; its select list is
        # replaced by the correlation columns (or a constant).
        sub.items = items or [ast.SelectItem(ast.NumberLit("1"),
                                             alias=f"__e{n}")]
        sub.distinct = False
        self.stmt.joins.append(ast.JoinClause(
            kind, ast.TableRef(subquery=sub, alias=alias),
            _and_chain(on)))

    def _add_in_join(self, node: ast.InSubquery,
                     negated: bool) -> list[ast.SqlExpr]:
        operand = node.operand
        if not isinstance(operand, ast.Identifier):
            raise SqlError("IN (SELECT ...) operand must be a column")
        sub = node.subquery
        _check_subquery(sub, "IN")
        if len(sub.items) != 1 or sub.items[0].expr is None:
            raise SqlError("IN subquery must select exactly one column")
        n = self._fresh()
        alias = f"__sq{n}"
        inner_name = f"__in{n}"
        on, items = self._pull_correlation(sub, alias, n)
        sub.items = [ast.SelectItem(sub.items[0].expr,
                                    alias=inner_name)] + items
        sub.distinct = False
        on.insert(0, ast.Binary(
            "=", operand, ast.Identifier(inner_name, qualifier=alias)))
        kind = "anti" if negated else "semi"
        self.stmt.joins.append(ast.JoinClause(
            kind, ast.TableRef(subquery=sub, alias=alias),
            _and_chain(on)))
        if negated:
            # NaN guard: NaN never equals anything, so the anti join
            # would pass every NaN probe row — but ``NaN NOT IN (…)``
            # is *unknown*, not true.  ``x = x`` fails exactly for NaN
            # and is vacuous for every other value.
            return [ast.Binary("=", operand, operand)]
        return []

    def _pull_correlation(self, sub: ast.SelectStmt, alias: str,
                          n: int):
        """Extract ``outer.col = inner_col`` conjuncts from the
        subquery's WHERE; each becomes a hidden output column of the
        derived table plus a join-condition equality."""
        inner = {ref.alias or ref.name or ref.function
                 for ref in sub.from_tables}
        inner |= {j.table.alias or j.table.name or j.table.function
                  for j in sub.joins}
        kept: list[ast.SqlExpr] = []
        on: list[ast.SqlExpr] = []
        items: list[ast.SelectItem] = []
        for conjunct in _split_conjuncts_ast(sub.where):
            outer_refs = [i for i in _identifiers_in(conjunct)
                          if i.qualifier is not None
                          and i.qualifier not in inner]
            if not outer_refs:
                kept.append(conjunct)
                continue
            pulled = _as_correlated_equality(conjunct, inner, alias, n,
                                             len(items))
            if pulled is None:
                raise SqlError(
                    "unsupported correlated subquery predicate"
                    f" {conjunct!r}: only equality with a qualified"
                    " outer column is decorrelated")
            item, condition = pulled
            items.append(item)
            on.append(condition)
        if items and (sub.group_by or sub.having is not None):
            raise SqlError(
                "correlated subquery with GROUP BY/HAVING is not"
                " supported")
        sub.where = _and_chain(kept)
        sub.order_by = []   # ordering is meaningless under semi/anti
        return on, items

    # -- scalar subqueries --------------------------------------------
    def rewrite_scalars(self, expr: ast.SqlExpr) -> ast.SqlExpr:
        if isinstance(expr, ast.ScalarSubquery):
            return self._add_scalar_table(expr.subquery)
        if isinstance(expr, (ast.ExistsExpr, ast.InSubquery)):
            raise SqlError(
                "EXISTS / IN (SELECT ...) is only supported as a"
                " top-level WHERE conjunct")
        if isinstance(expr, ast.Binary):
            expr.left = self.rewrite_scalars(expr.left)
            expr.right = self.rewrite_scalars(expr.right)
        elif isinstance(expr, ast.Unary):
            expr.operand = self.rewrite_scalars(expr.operand)
        elif isinstance(expr, ast.BetweenExpr):
            expr.operand = self.rewrite_scalars(expr.operand)
            expr.low = self.rewrite_scalars(expr.low)
            expr.high = self.rewrite_scalars(expr.high)
        elif isinstance(expr, ast.InExpr):
            expr.operand = self.rewrite_scalars(expr.operand)
            expr.values = [self.rewrite_scalars(v) for v in expr.values]
        elif isinstance(expr, ast.LikeExpr):
            expr.operand = self.rewrite_scalars(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            expr.args = [self.rewrite_scalars(a) for a in expr.args]
        elif isinstance(expr, ast.CaseExpr):
            expr.whens = [(self.rewrite_scalars(c),
                           self.rewrite_scalars(v))
                          for c, v in expr.whens]
            if expr.otherwise is not None:
                expr.otherwise = self.rewrite_scalars(expr.otherwise)
        return expr

    def _add_scalar_table(self, sub: ast.SelectStmt) -> ast.Identifier:
        _check_subquery(sub, "scalar")
        if len(sub.items) != 1 or sub.items[0].expr is None:
            raise SqlError(
                "scalar subquery must select exactly one column")
        if sub.group_by or not _contains_aggregate(sub.items[0].expr):
            raise SqlError(
                "scalar subquery must be a single-row aggregate"
                " (no GROUP BY)")
        n = self._fresh()
        alias = f"__ssq{n}"
        name = f"__sc{n}"
        sub.items = [ast.SelectItem(sub.items[0].expr, alias=name)]
        self.stmt.from_tables.append(
            ast.TableRef(subquery=sub, alias=alias))
        return ast.Identifier(name, qualifier=alias)


def _check_subquery(sub: ast.SelectStmt, what: str) -> None:
    if sub.limit is not None:
        raise SqlError(f"{what} subquery cannot use LIMIT")
    if sub.union_all:
        raise SqlError(f"{what} subquery cannot use UNION ALL")


def _as_correlated_equality(conjunct: ast.SqlExpr, inner: set,
                            alias: str, n: int, index: int):
    if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="
            and isinstance(conjunct.left, ast.Identifier)
            and isinstance(conjunct.right, ast.Identifier)):
        return None

    def is_outer(ident: ast.Identifier) -> bool:
        return ident.qualifier is not None \
            and ident.qualifier not in inner

    left, right = conjunct.left, conjunct.right
    if is_outer(left) == is_outer(right):
        return None
    outer_ident = left if is_outer(left) else right
    inner_ident = right if is_outer(left) else left
    name = f"__cor{n}_{index}"
    item = ast.SelectItem(inner_ident, alias=name)
    condition = ast.Binary("=", outer_ident,
                           ast.Identifier(name, qualifier=alias))
    return item, condition


def _ast_equal(a: ast.SqlExpr, b: ast.SqlExpr) -> bool:
    return repr(a) == repr(b)   # dataclass reprs are structural


def _literal_value(expr: ast.SqlExpr):
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.StringLit):
        return expr.value
    if isinstance(expr, ast.DateLit):
        from ..columnar.types import date_to_days
        return date_to_days(expr.iso)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_literal_value(expr.operand)
    raise SqlError("table function arguments must be literals")


def _zero_like(value: e.Expr) -> e.Expr:
    """Explicit CASE default (this engine has no NULLs)."""
    return e.Lit(0)


def _is_single_row(plan: PlanNode) -> bool:
    """Conservative single-row detection: a scalar aggregate (possibly
    under projections/limits) produces exactly one row."""
    if isinstance(plan, Aggregate):
        return not plan.group_keys
    if isinstance(plan, (Project, Limit, Select)):
        return _is_single_row(plan.children[0])
    return False


def source_scope_check(scope: _Scope) -> _Scope:
    aliases = [s.alias for s in scope.sources]
    if len(set(aliases)) != len(aliases):
        raise SqlError(f"duplicate table aliases: {aliases}")
    return scope
