"""SQL front end: lexer, parser, binder."""

from ..columnar.catalog import Catalog
from ..plan.logical import PlanNode
from .binder import bind
from .lexer import Token, tokenize
from .parser import parse


def sql_to_plan(text: str, catalog: Catalog) -> PlanNode:
    """Parse and bind SQL text into a logical plan."""
    return bind(parse(text), catalog)


__all__ = ["Token", "bind", "parse", "sql_to_plan", "tokenize"]
