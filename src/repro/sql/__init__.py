"""SQL front end: lexer, parser, binder."""

from ..columnar.catalog import CatalogView
from ..plan.logical import PlanNode
from .binder import bind
from .lexer import Token, tokenize
from .parser import parse


def sql_to_plan(text: str, catalog: CatalogView) -> PlanNode:
    """Parse and bind SQL text into a logical plan.

    ``catalog`` may be a live :class:`~repro.columnar.catalog.Catalog`
    or — the concurrency-safe path — a pinned
    :class:`~repro.columnar.catalog.CatalogSnapshot`.
    """
    return bind(parse(text), catalog)


__all__ = ["Token", "bind", "parse", "sql_to_plan", "tokenize"]
