"""Columnar substrate: types, batches, tables, and the catalog."""

from .batch import VECTOR_SIZE, Batch, concat_batches
from .catalog import (BinningSpec, Catalog, CatalogSnapshot, ColumnStats,
                      TableBackedFunction, TableEntry, TableFunctionEntry)
from .table import Schema, Table
from .types import (ALL_TYPES, BOOL, DATE, FLOAT64, INT64, STRING, DataType,
                    date_to_days, days_to_date, days_to_iso, infer_type,
                    type_from_name, years_of)

__all__ = [
    "ALL_TYPES", "BOOL", "DATE", "FLOAT64", "INT64", "STRING",
    "Batch", "BinningSpec", "Catalog", "CatalogSnapshot", "ColumnStats",
    "DataType", "Schema",
    "Table", "TableBackedFunction", "TableEntry", "TableFunctionEntry",
    "VECTOR_SIZE",
    "concat_batches", "date_to_days", "days_to_date", "days_to_iso",
    "infer_type", "type_from_name", "years_of",
]
