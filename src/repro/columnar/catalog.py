"""The catalog: named base tables, statistics, table functions — versioned.

Statistics (row counts, per-column distinct counts, min/max) feed two parts
of the recycler:

* the proactive *cube caching* rules, which only fire when the selection
  column's distinct count is below a threshold (paper Section IV-B), and
* speculative size estimation for results that have never been seen.

Table functions (e.g. SkyServer's ``fGetNearbyObjEq``) are registered here
and appear in plans as leaf operators, exactly like scans.

Versioning (online DDL): every table and table function carries a
monotonically increasing **version**, bumped atomically under the catalog
write lock by every data-changing DDL operation —
:meth:`Catalog.register_table`, :meth:`Catalog.drop_table`,
:meth:`Catalog.append_rows`, :meth:`Catalog.register_function`.
Versions survive drops, so re-creating a table is always *newer* than any
result computed from the dropped incarnation.  :meth:`Catalog.snapshot`
captures an immutable :class:`CatalogSnapshot` — the full read API over a
point-in-time table/function/version view — that a query pins at prepare
time and resolves against for its entire lifetime (binder, validator,
proactive rules, scan operators).  Entries are never mutated in place
(:meth:`register_binning` replaces the entry copy-on-write), so sharing
entry objects between the live catalog and snapshots is safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import CatalogError, SchemaError
from . import types as t
from .table import Schema, Table

#: A table function takes literal arguments and produces a Table.
TableFunction = Callable[..., Table]


@dataclass
class ColumnStats:
    """Summary statistics for one column of a base table."""

    distinct_count: int
    min_value: object | None = None
    max_value: object | None = None


@dataclass
class BinningSpec:
    """How a high-cardinality ordered column can be binned.

    Used by the proactive "cube caching with binning" rule.  ``kind`` is
    either ``"year"`` (DATE columns binned to calendar years) or
    ``"width"`` (numeric columns binned as ``value // width``).
    """

    column: str
    kind: str
    width: int = 0  # only for kind == "width"

    def __post_init__(self) -> None:
        if self.kind not in ("year", "width"):
            raise CatalogError(f"unknown binning kind {self.kind!r}")
        if self.kind == "width" and self.width <= 0:
            raise CatalogError("width binning requires a positive width")


@dataclass
class TableEntry:
    """A base table together with its statistics.

    Treated as immutable once published: DDL replaces the entry (the old
    one lives on inside any snapshot that captured it)."""

    name: str
    table: Table
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)
    binnings: dict[str, BinningSpec] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


@dataclass
class TableFunctionEntry:
    """A registered table function."""

    name: str
    function: TableFunction
    schema: Schema
    #: deterministic per-call cost units charged by the engine in addition
    #: to the per-output-tuple cost; lets expensive functions (cone search)
    #: look expensive to the benefit metric.
    invocation_cost: float = 0.0


class CatalogView:
    """The shared read API over a table/function/version mapping.

    :class:`Catalog` (live, mutable under its write lock) and
    :class:`CatalogSnapshot` (frozen point-in-time view) both expose
    exactly this interface, so every consumer — binder, validator,
    proactive rules, scan operators — works identically against either.
    """

    __slots__ = ()  # lets CatalogSnapshot's slots actually take effect

    _tables: dict[str, TableEntry]
    _functions: dict[str, TableFunctionEntry]
    _table_versions: dict[str, int]
    _function_versions: dict[str, int]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_entry(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table(self, name: str) -> Table:
        return self.table_entry(name).table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    def table_version(self, name: str) -> int:
        """Current version of ``name`` (0 when never registered).

        Versions only grow, and survive :meth:`Catalog.drop_table` — any
        result computed from a dropped table is permanently behind.
        """
        return self._table_versions.get(name.lower(), 0)

    def function_version(self, name: str) -> int:
        return self._function_versions.get(name.lower(), 0)

    def versions_for(self, tables: Iterable[str],
                     functions: Iterable[str] = ()
                     ) -> tuple[dict[str, int], dict[str, int]]:
        """The version tags for a dependency set — what cache admission
        compares against the live catalog (and reuse against the query's
        snapshot)."""
        return ({name: self.table_version(name) for name in tables},
                {name: self.function_version(name) for name in functions})

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_count(self, table: str, column: str) -> int:
        """Distinct values of ``table.column`` (0 when unknown)."""
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        return stats.distinct_count if stats else 0

    def column_range(self, table: str,
                     column: str) -> tuple[object, object] | None:
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        if stats is None or stats.min_value is None:
            return None
        return stats.min_value, stats.max_value

    # ------------------------------------------------------------------
    # binning specs (drive cube caching with binning)
    # ------------------------------------------------------------------
    def binning_for(self, table: str, column: str) -> BinningSpec | None:
        entry = self.table_entry(table)
        return entry.binnings.get(column)

    # ------------------------------------------------------------------
    # table functions
    # ------------------------------------------------------------------
    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def function_names(self) -> list[str]:
        return sorted(self._functions)

    def function_entry(self, name: str) -> TableFunctionEntry:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table function {name!r};"
                f" have {sorted(self._functions)}") from None

    def call_function(self, name: str, args: Sequence[object]) -> Table:
        entry = self.function_entry(name)
        result = entry.function(*args)
        if result.schema != entry.schema:
            raise CatalogError(
                f"table function {name!r} returned schema {result.schema!r},"
                f" registered {entry.schema!r}")
        return result


class CatalogSnapshot(CatalogView):
    """An immutable point-in-time view of a :class:`Catalog`.

    Every query pins one at prepare time and resolves tables, functions,
    statistics, and binnings against it for its whole lifetime — a
    concurrent ``register_table``/``drop_table``/``append_rows`` never
    changes what a running query reads (the old :class:`~.table.Table`
    objects are immutable and stay alive through the snapshot).
    """

    __slots__ = ("_tables", "_functions", "_table_versions",
                 "_function_versions", "ddl_clock")

    def __init__(self, tables: dict[str, TableEntry],
                 functions: dict[str, TableFunctionEntry],
                 table_versions: dict[str, int],
                 function_versions: dict[str, int],
                 ddl_clock: int) -> None:
        self._tables = tables
        self._functions = functions
        self._table_versions = table_versions
        self._function_versions = function_versions
        #: value of the catalog's global DDL counter at capture time.
        self.ddl_clock = ddl_clock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CatalogSnapshot(ddl_clock={self.ddl_clock},"
                f" tables={sorted(self._tables)})")


class Catalog(CatalogView):
    """A registry of base tables and table functions.

    Reads are lock-free (snapshots and the live view share immutable
    entries); every mutation swaps entries and bumps the affected
    version atomically under the write lock, so a :meth:`snapshot` can
    never observe a table without its matching version bump.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._functions: dict[str, TableFunctionEntry] = {}
        self._table_versions: dict[str, int] = {}
        self._function_versions: dict[str, int] = {}
        #: total DDL operations ever applied (monotonic observability
        #: clock; per-name versions drive correctness).
        self.ddl_clock = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> CatalogSnapshot:
        """Capture an immutable view of every table, function, binning,
        and version — the unit of isolation for one query."""
        with self._lock:
            return CatalogSnapshot(dict(self._tables),
                                   dict(self._functions),
                                   dict(self._table_versions),
                                   dict(self._function_versions),
                                   self.ddl_clock)

    # ------------------------------------------------------------------
    # DDL: tables
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       compute_stats: bool = True) -> TableEntry:
        """Register (or replace) a base table: swap the entry and bump
        its version in one atomic step.

        When ``compute_stats`` is set, per-column distinct counts and
        min/max are computed eagerly; tiny tables make this cheap and the
        proactive rules rely on the distinct counts being present.
        """
        key = name.lower()
        entry = TableEntry(name=key, table=table)
        if compute_stats:
            entry.column_stats = _compute_stats(table)
        with self._lock:
            self._tables[key] = entry
            self._bump_table(key)
        return entry

    def drop_table(self, name: str) -> None:
        """Remove a base table; its version is bumped (and kept) so any
        cached result computed from it stays permanently behind."""
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[key]
            self._bump_table(key)

    def append_rows(self, name: str, rows: "Table | Iterable[Sequence]",
                    compute_stats: bool = True) -> TableEntry:
        """The update-transaction fast path: append ``rows`` (a
        schema-compatible :class:`~.table.Table` or an iterable of row
        tuples) to ``name`` as one atomic swap-and-bump.

        The appended-to table is rebuilt as a fresh immutable
        :class:`~.table.Table`, so snapshots pinned before the append
        keep reading the old rows — exactly the paper's committed-update
        model, per table instead of per batch.

        Optimistic under concurrent DDL: the merge runs outside the
        lock, and if another DDL swapped the table meanwhile the append
        re-reads and re-merges (appends serialize, they never fail
        spuriously and never lose rows).  Only a genuine schema change
        racing in raises :class:`~repro.errors.SchemaError`.
        """
        key = name.lower()
        extra: Table | None = rows if isinstance(rows, Table) else None
        while True:
            old = self.table_entry(name)
            schema = old.table.schema
            if extra is None:
                # Materialize the row iterable exactly once (it may be
                # a one-shot generator); retries reuse the Table.
                extra = Table.from_rows(schema.names, schema.types, rows)
            if extra.schema != schema:
                raise SchemaError(
                    f"append to {name!r}: schema {extra.schema!r} does"
                    f" not match {schema!r}")
            merged = Table(schema, {
                column: np.concatenate([old.table.column(column),
                                        extra.column(column)])
                for column in schema.names})
            entry = TableEntry(name=key, table=merged,
                               binnings=old.binnings)
            if compute_stats:
                entry.column_stats = _compute_stats(merged)
            with self._lock:
                if self._tables.get(key) is not old:
                    continue  # concurrent DDL swapped mid-merge; redo
                self._tables[key] = entry
                self._bump_table(key)
            return entry

    def register_binning(self, table: str, spec: BinningSpec) -> None:
        """Declare how a column may be binned.  Copy-on-write: the entry
        is replaced (never mutated), keeping snapshots immutable.  No
        version bump — a binning spec changes plan shapes the proactive
        rules may produce, not the table's contents, so existing cached
        results stay valid."""
        with self._lock:
            entry = self.table_entry(table)
            binnings = dict(entry.binnings)
            binnings[spec.column] = spec
            self._tables[entry.name] = replace(entry, binnings=binnings)

    def _bump_table(self, key: str) -> None:
        self._table_versions[key] = self._table_versions.get(key, 0) + 1
        self.ddl_clock += 1

    # ------------------------------------------------------------------
    # DDL: table functions
    # ------------------------------------------------------------------
    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        key = name.lower()
        with self._lock:
            self._functions[key] = TableFunctionEntry(
                name=key, function=function, schema=schema,
                invocation_cost=invocation_cost)
            self._function_versions[key] = \
                self._function_versions.get(key, 0) + 1
            self.ddl_clock += 1


def _compute_stats(table: Table) -> dict[str, ColumnStats]:
    stats: dict[str, ColumnStats] = {}
    for name in table.schema.names:
        values = table.column(name)
        if len(values) == 0:
            stats[name] = ColumnStats(distinct_count=0)
            continue
        dtype = table.schema.type_of(name)
        if dtype is t.STRING:
            uniques = set(values.tolist())
            stats[name] = ColumnStats(distinct_count=len(uniques),
                                      min_value=min(uniques),
                                      max_value=max(uniques))
        else:
            if np.issubdtype(values.dtype, np.floating):
                # np.unique counts every NaN as its own distinct value
                # and would return NaN min/max, corrupting the proactive
                # cube threshold and speculative size estimates.
                values = values[~np.isnan(values)]
                if len(values) == 0:
                    stats[name] = ColumnStats(distinct_count=0)
                    continue
            uniques = np.unique(values)
            stats[name] = ColumnStats(distinct_count=int(len(uniques)),
                                      min_value=uniques[0].item(),
                                      max_value=uniques[-1].item())
    return stats


__all__ = [
    "BinningSpec", "Catalog", "CatalogSnapshot", "CatalogView",
    "ColumnStats", "TableEntry", "TableFunction", "TableFunctionEntry",
]
