"""The catalog: named base tables, statistics, table functions — versioned.

Statistics (row counts, per-column distinct counts, min/max) feed two parts
of the recycler:

* the proactive *cube caching* rules, which only fire when the selection
  column's distinct count is below a threshold (paper Section IV-B), and
* speculative size estimation for results that have never been seen.

Table functions (e.g. SkyServer's ``fGetNearbyObjEq``) are registered here
and appear in plans as leaf operators, exactly like scans.

Versioning (online DDL): every table and table function carries a
monotonically increasing **version**, bumped atomically under the catalog
write lock by every data-changing DDL operation —
:meth:`Catalog.register_table`, :meth:`Catalog.drop_table`,
:meth:`Catalog.append_rows`, :meth:`Catalog.register_function`,
:meth:`Catalog.alter_table_add_column`, :meth:`Catalog.rename_column`.
Versions survive drops, so re-creating a table is always *newer* than any
result computed from the dropped incarnation.  :meth:`Catalog.snapshot`
captures an immutable :class:`CatalogSnapshot` — the full read API over a
point-in-time table/function/version view — that a query pins at prepare
time and resolves against for its entire lifetime (binder, validator,
proactive rules, scan operators).  Entries are never mutated in place
(:meth:`register_binning` replaces the entry copy-on-write), so sharing
entry objects between the live catalog and snapshots is safe.

Alongside the fine-grained version, every table and function carries an
**incarnation** counter that only :meth:`Catalog.register_table` (a full
replace), :meth:`Catalog.drop_table`, :meth:`Catalog.rename_column`
(plans bound to the old name can never validate again), and
:meth:`Catalog.register_function` bump — :meth:`Catalog.append_rows`
and :meth:`Catalog.alter_table_add_column` do *not*: an append (or a
purely additive column) extends the same logical table, so recycler-graph
history (reference counts, recurring-plan structure) computed against it
stays meaningful, while a replace/drop starts a dataset the old
statistics say nothing about.  The recycler stamps every graph node with
the incarnations its inserting snapshot read; nodes whose stamps can
never match the live catalog again are *version-dead* and are swept by
maintenance GC (see :mod:`repro.recycler.graph`).

Statistics are maintained **incrementally** across appends:
:meth:`Catalog.append_rows` merges the delta batch's per-column
min/max/NaN-aware uniques into the existing :class:`ColumnStats`
(exactly, via retained unique sets) instead of rescanning the merged
table, and a per-entry staleness counter forces a periodic full
recompute (``stats_refresh_appends``) so retained sets can never drift
from a bug for long.  Retained sets are capped at
``stats_uniques_limit`` distinct values — the incremental path targets
the low-cardinality group/selection columns the proactive rules read;
a unique-key-like column drops its set (bounding stat memory) and pays
the full recompute on append instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import CatalogError, SchemaError
from . import types as t
from .table import Schema, Table

#: A table function takes literal arguments and produces a Table.
TableFunction = Callable[..., Table]


class TableBackedFunction:
    """A table function whose state derives from one registered table.

    Table functions are arbitrary callables, which makes them opaque to
    process-sharded execution: a closure over table columns (SkyServer's
    cone search) cannot cross a process boundary.  This wrapper makes
    the dependency explicit — ``factory`` is a *module-level* callable
    (picklable by reference) that takes the backing :class:`Table` and
    returns the actual implementation — so the function pickles as
    ``(factory, table_name)`` and every attaching process rebinds it
    against its own catalog, where the backing table is typically a
    zero-copy shared-memory view.  Rebinding against the same table
    bytes reproduces the same implementation, so remote invocations are
    byte-identical to local ones.
    """

    __slots__ = ("factory", "table_name", "_impl")

    def __init__(self, factory: Callable[[Table], TableFunction],
                 table_name: str) -> None:
        self.factory = factory
        self.table_name = table_name.lower()
        self._impl: TableFunction | None = None

    def bind(self, catalog: "Catalog") -> "TableBackedFunction":
        """Build the implementation over ``catalog``'s current backing
        table; returns ``self`` for chaining into ``register_function``."""
        self._impl = self.factory(catalog.table(self.table_name))
        return self

    def __call__(self, *args) -> Table:
        if self._impl is None:
            raise CatalogError(
                f"table-backed function over {self.table_name!r} was"
                f" never bound to a catalog")
        return self._impl(*args)

    def __reduce__(self):
        # the implementation stays behind: the attaching process rebinds
        return (TableBackedFunction, (self.factory, self.table_name))


@dataclass
class ColumnStats:
    """Summary statistics for one column of a base table."""

    distinct_count: int
    min_value: object | None = None
    max_value: object | None = None
    #: retained unique values — a sorted ``np.ndarray`` for numeric/date
    #: columns, a ``frozenset`` for strings — the merge base that makes
    #: incremental append stats *exact* instead of approximate.  ``None``
    #: when the column is empty, when its cardinality exceeds the
    #: catalog's ``stats_uniques_limit`` (retaining a near-copy of a
    #: unique-key column would double its memory; such columns fall
    #: back to the full recompute on append), or when the stats were
    #: built by a legacy path.  Excluded from equality so
    #: incremental-vs-full comparisons test the visible statistics.
    uniques: object | None = field(default=None, repr=False, compare=False)


@dataclass
class BinningSpec:
    """How a high-cardinality ordered column can be binned.

    Used by the proactive "cube caching with binning" rule.  ``kind`` is
    either ``"year"`` (DATE columns binned to calendar years) or
    ``"width"`` (numeric columns binned as ``value // width``).
    """

    column: str
    kind: str
    width: int = 0  # only for kind == "width"

    def __post_init__(self) -> None:
        if self.kind not in ("year", "width"):
            raise CatalogError(f"unknown binning kind {self.kind!r}")
        if self.kind == "width" and self.width <= 0:
            raise CatalogError("width binning requires a positive width")


@dataclass
class TableEntry:
    """A base table together with its statistics.

    Treated as immutable once published: DDL replaces the entry (the old
    one lives on inside any snapshot that captured it)."""

    name: str
    table: Table
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)
    binnings: dict[str, BinningSpec] = field(default_factory=dict)
    #: incremental stat merges since the last full recompute — the
    #: staleness counter that triggers a periodic full rescan.
    stats_appends: int = 0

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


@dataclass
class TableFunctionEntry:
    """A registered table function."""

    name: str
    function: TableFunction
    schema: Schema
    #: deterministic per-call cost units charged by the engine in addition
    #: to the per-output-tuple cost; lets expensive functions (cone search)
    #: look expensive to the benefit metric.
    invocation_cost: float = 0.0


class CatalogView:
    """The shared read API over a table/function/version mapping.

    :class:`Catalog` (live, mutable under its write lock) and
    :class:`CatalogSnapshot` (frozen point-in-time view) both expose
    exactly this interface, so every consumer — binder, validator,
    proactive rules, scan operators — works identically against either.
    """

    __slots__ = ()  # lets CatalogSnapshot's slots actually take effect

    _tables: dict[str, TableEntry]
    _functions: dict[str, TableFunctionEntry]
    _table_versions: dict[str, int]
    _function_versions: dict[str, int]
    _table_incarnations: dict[str, int]
    _function_incarnations: dict[str, int]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_entry(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table(self, name: str) -> Table:
        return self.table_entry(name).table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    def table_version(self, name: str) -> int:
        """Current version of ``name`` (0 when never registered).

        Versions only grow, and survive :meth:`Catalog.drop_table` — any
        result computed from a dropped table is permanently behind.
        """
        return self._table_versions.get(name.lower(), 0)

    def function_version(self, name: str) -> int:
        return self._function_versions.get(name.lower(), 0)

    def versions_for(self, tables: Iterable[str],
                     functions: Iterable[str] = ()
                     ) -> tuple[dict[str, int], dict[str, int]]:
        """The version tags for a dependency set — what cache admission
        compares against the live catalog (and reuse against the query's
        snapshot)."""
        return ({name: self.table_version(name) for name in tables},
                {name: self.function_version(name) for name in functions})

    # ------------------------------------------------------------------
    # incarnations
    # ------------------------------------------------------------------
    def table_incarnation(self, name: str) -> int:
        """Current incarnation of ``name`` (0 when never registered).

        Bumped by :meth:`Catalog.register_table` (replace) and
        :meth:`Catalog.drop_table` but — unlike :meth:`table_version` —
        **not** by :meth:`Catalog.append_rows`: appends extend the same
        logical dataset, a replace or drop starts a new one.  The
        recycler uses incarnations to decide when graph history is
        version-dead."""
        return self._table_incarnations.get(name.lower(), 0)

    def function_incarnation(self, name: str) -> int:
        return self._function_incarnations.get(name.lower(), 0)

    def incarnations_for(self, tables: Iterable[str],
                         functions: Iterable[str] = ()
                         ) -> tuple[dict[str, int], dict[str, int]]:
        """Incarnation stamps for a dependency set — what graph nodes
        record at insertion and version-dead GC compares against."""
        return ({name: self.table_incarnation(name) for name in tables},
                {name: self.function_incarnation(name)
                 for name in functions})

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_count(self, table: str, column: str) -> int:
        """Distinct values of ``table.column`` (0 when unknown)."""
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        return stats.distinct_count if stats else 0

    def column_range(self, table: str,
                     column: str) -> tuple[object, object] | None:
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        if stats is None or stats.min_value is None:
            return None
        return stats.min_value, stats.max_value

    # ------------------------------------------------------------------
    # binning specs (drive cube caching with binning)
    # ------------------------------------------------------------------
    def binning_for(self, table: str, column: str) -> BinningSpec | None:
        entry = self.table_entry(table)
        return entry.binnings.get(column)

    # ------------------------------------------------------------------
    # table functions
    # ------------------------------------------------------------------
    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def function_names(self) -> list[str]:
        return sorted(self._functions)

    def function_entry(self, name: str) -> TableFunctionEntry:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table function {name!r};"
                f" have {sorted(self._functions)}") from None

    def call_function(self, name: str, args: Sequence[object]) -> Table:
        entry = self.function_entry(name)
        result = entry.function(*args)
        if result.schema != entry.schema:
            raise CatalogError(
                f"table function {name!r} returned schema {result.schema!r},"
                f" registered {entry.schema!r}")
        return result


class CatalogSnapshot(CatalogView):
    """An immutable point-in-time view of a :class:`Catalog`.

    Every query pins one at prepare time and resolves tables, functions,
    statistics, and binnings against it for its whole lifetime — a
    concurrent ``register_table``/``drop_table``/``append_rows`` never
    changes what a running query reads (the old :class:`~.table.Table`
    objects are immutable and stay alive through the snapshot).
    """

    __slots__ = ("_tables", "_functions", "_table_versions",
                 "_function_versions", "_table_incarnations",
                 "_function_incarnations", "ddl_clock")

    def __init__(self, tables: dict[str, TableEntry],
                 functions: dict[str, TableFunctionEntry],
                 table_versions: dict[str, int],
                 function_versions: dict[str, int],
                 ddl_clock: int,
                 table_incarnations: dict[str, int] | None = None,
                 function_incarnations: dict[str, int] | None = None
                 ) -> None:
        self._tables = tables
        self._functions = functions
        self._table_versions = table_versions
        self._function_versions = function_versions
        self._table_incarnations = table_incarnations or {}
        self._function_incarnations = function_incarnations or {}
        #: value of the catalog's global DDL counter at capture time.
        self.ddl_clock = ddl_clock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CatalogSnapshot(ddl_clock={self.ddl_clock},"
                f" tables={sorted(self._tables)})")


class Catalog(CatalogView):
    """A registry of base tables and table functions.

    Reads are lock-free (snapshots and the live view share immutable
    entries); every mutation swaps entries and bumps the affected
    version atomically under the write lock, so a :meth:`snapshot` can
    never observe a table without its matching version bump.
    """

    #: incremental stat merges allowed before an append forces a full
    #: recompute of the merged table's statistics (the staleness bound).
    DEFAULT_STATS_REFRESH_APPENDS = 16

    #: cardinality cap on retained unique sets: beyond this many
    #: distinct values a column's uniques are dropped (bounding stat
    #: memory) and its appends pay the full recompute instead — the
    #: incremental win targets the low-cardinality group/selection
    #: columns the proactive rules care about anyway.
    DEFAULT_STATS_UNIQUES_LIMIT = 65536

    def __init__(self, stats_refresh_appends: int | None = None,
                 stats_uniques_limit: int | None = None) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._functions: dict[str, TableFunctionEntry] = {}
        self._table_versions: dict[str, int] = {}
        self._function_versions: dict[str, int] = {}
        self._table_incarnations: dict[str, int] = {}
        self._function_incarnations: dict[str, int] = {}
        #: total DDL operations ever applied (monotonic observability
        #: clock; per-name versions drive correctness).
        self.ddl_clock = 0
        self.stats_refresh_appends = (
            self.DEFAULT_STATS_REFRESH_APPENDS
            if stats_refresh_appends is None else stats_refresh_appends)
        if self.stats_refresh_appends < 1:
            raise CatalogError("stats_refresh_appends must be >= 1")
        self.stats_uniques_limit = (
            self.DEFAULT_STATS_UNIQUES_LIMIT
            if stats_uniques_limit is None else stats_uniques_limit)
        if self.stats_uniques_limit < 1:
            raise CatalogError("stats_uniques_limit must be >= 1")
        #: observability: how appends maintained their statistics
        #: (mutated under the write lock, surfaced by
        #: ``Database.summary()["maintenance"]``).
        self.stats_counters = {"incremental_merges": 0,
                               "full_recomputes": 0}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> CatalogSnapshot:
        """Capture an immutable view of every table, function, binning,
        and version — the unit of isolation for one query."""
        with self._lock:
            return CatalogSnapshot(dict(self._tables),
                                   dict(self._functions),
                                   dict(self._table_versions),
                                   dict(self._function_versions),
                                   self.ddl_clock,
                                   dict(self._table_incarnations),
                                   dict(self._function_incarnations))

    # ------------------------------------------------------------------
    # DDL: tables
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       compute_stats: bool = True) -> TableEntry:
        """Register (or replace) a base table: swap the entry and bump
        its version in one atomic step.

        When ``compute_stats`` is set, per-column distinct counts and
        min/max are computed eagerly; tiny tables make this cheap and the
        proactive rules rely on the distinct counts being present.
        """
        key = name.lower()
        entry = TableEntry(name=key, table=table)
        if compute_stats:
            entry.column_stats = _compute_stats(
                table, uniques_limit=self.stats_uniques_limit)
        with self._lock:
            self._tables[key] = entry
            self._bump_table(key)
            self._bump_incarnation(key)
        return entry

    def drop_table(self, name: str) -> None:
        """Remove a base table; its version is bumped (and kept) so any
        cached result computed from it stays permanently behind."""
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[key]
            self._bump_table(key)
            self._bump_incarnation(key)

    def append_rows(self, name: str, rows: "Table | Iterable[Sequence]",
                    compute_stats: bool = True) -> TableEntry:
        """The update-transaction fast path: append ``rows`` (a
        schema-compatible :class:`~.table.Table` or an iterable of row
        tuples) to ``name`` as one atomic swap-and-bump.

        The appended-to table is rebuilt as a fresh immutable
        :class:`~.table.Table`, so snapshots pinned before the append
        keep reading the old rows — exactly the paper's committed-update
        model, per table instead of per batch.

        Statistics are maintained **incrementally**: the delta batch's
        per-column stats (NaN-aware, exactly as the full path computes
        them) are merged into the existing entry's retained unique sets
        instead of rescanning the merged table — O(delta + distinct)
        instead of O(table) per append.  Every
        ``stats_refresh_appends``-th append (or whenever the existing
        entry lacks retained uniques) the full recompute runs instead.

        Optimistic under concurrent DDL: the merge runs outside the
        lock, and if another DDL swapped the table meanwhile the append
        re-reads and re-merges (appends serialize, they never fail
        spuriously and never lose rows).  Only a genuine schema change
        racing in raises :class:`~repro.errors.SchemaError`.
        """
        key = name.lower()
        extra: Table | None = rows if isinstance(rows, Table) else None
        while True:
            old = self.table_entry(name)
            schema = old.table.schema
            if extra is None:
                # Materialize the row iterable exactly once (it may be
                # a one-shot generator); retries reuse the Table.
                extra = Table.from_rows(schema.names, schema.types, rows)
            if extra.schema != schema:
                raise SchemaError(
                    f"append to {name!r}: schema {extra.schema!r} does"
                    f" not match {schema!r}")
            merged = Table(schema, {
                column: np.concatenate([old.table.column(column),
                                        extra.column(column)])
                for column in schema.names})
            entry = TableEntry(name=key, table=merged,
                               binnings=old.binnings)
            incremental = False
            if compute_stats:
                merged_stats = None
                if old.stats_appends + 1 < self.stats_refresh_appends:
                    merged_stats = _merge_stats(
                        old.column_stats, extra,
                        uniques_limit=self.stats_uniques_limit)
                if merged_stats is not None:
                    entry.column_stats = merged_stats
                    entry.stats_appends = old.stats_appends + 1
                    incremental = True
                else:
                    entry.column_stats = _compute_stats(
                        merged, uniques_limit=self.stats_uniques_limit)
            with self._lock:
                if self._tables.get(key) is not old:
                    continue  # concurrent DDL swapped mid-merge; redo
                self._tables[key] = entry
                self._bump_table(key)
                if compute_stats:
                    counter = "incremental_merges" if incremental \
                        else "full_recomputes"
                    self.stats_counters[counter] += 1
            return entry

    # ------------------------------------------------------------------
    # DDL: schema evolution
    # ------------------------------------------------------------------
    def alter_table_add_column(self, name: str, column: str,
                               dtype: t.DataType,
                               default: object | None = None
                               ) -> TableEntry:
        """Add ``column`` to table ``name``, filled with ``default``
        (the type's zero value — 0, 0.0, "" — when omitted).

        Bumps the table **version** (cached results claiming to cover
        the table are pre-evolution and must be rejected by admission /
        invalidated) but **not** its incarnation: the existing columns
        are byte-identical, so plans bound before the DDL — which
        cannot reference the new column — still validate against the
        new entry, and recycler-graph history stays meaningful.
        """
        key = name.lower()
        with self._lock:
            old = self.table_entry(name)
            schema = old.table.schema
            if column in schema.names:
                raise SchemaError(
                    f"table {name!r} already has a column {column!r}")
            if default is None:
                default = "" if dtype is t.STRING else 0
            if dtype is t.STRING:
                fill = np.empty(old.table.num_rows, dtype=object)
                fill[:] = default
            else:
                fill = np.full(old.table.num_rows, default,
                               dtype=dtype.numpy_dtype)
            new_schema = schema.concat(Schema([column], [dtype]))
            table = Table(new_schema,
                          {**{n: old.table.column(n)
                              for n in schema.names},
                           column: fill})
            stats = dict(old.column_stats)
            if stats:
                stats[column] = _compute_stats(
                    table.select([column]),
                    uniques_limit=self.stats_uniques_limit)[column]
            entry = TableEntry(name=key, table=table,
                               column_stats=stats,
                               binnings=old.binnings,
                               stats_appends=old.stats_appends)
            self._tables[key] = entry
            self._bump_table(key)
        return entry

    def rename_column(self, name: str, old_name: str,
                      new_name: str) -> TableEntry:
        """Rename ``old_name`` to ``new_name`` in table ``name``.

        Bumps the table version **and** its incarnation: any plan bound
        against the old column name fails validation (the column is
        gone) and must be re-bound, and recycler-graph history keyed on
        the old name is version-dead.
        """
        key = name.lower()
        with self._lock:
            old = self.table_entry(name)
            schema = old.table.schema
            if old_name not in schema.names:
                raise SchemaError(
                    f"table {name!r} has no column {old_name!r}")
            if new_name in schema.names:
                raise SchemaError(
                    f"table {name!r} already has a column {new_name!r}")
            mapping = {old_name: new_name}
            stats = {mapping.get(n, n): s
                     for n, s in old.column_stats.items()}
            binnings = {mapping.get(col, col):
                        replace(spec, column=mapping.get(col, col))
                        for col, spec in old.binnings.items()}
            entry = TableEntry(name=key, table=old.table.rename(mapping),
                               column_stats=stats, binnings=binnings,
                               stats_appends=old.stats_appends)
            self._tables[key] = entry
            self._bump_table(key)
            self._bump_incarnation(key)
        return entry

    def register_binning(self, table: str, spec: BinningSpec) -> None:
        """Declare how a column may be binned.  Copy-on-write: the entry
        is replaced (never mutated), keeping snapshots immutable.  No
        version bump — a binning spec changes plan shapes the proactive
        rules may produce, not the table's contents, so existing cached
        results stay valid."""
        with self._lock:
            entry = self.table_entry(table)
            binnings = dict(entry.binnings)
            binnings[spec.column] = spec
            self._tables[entry.name] = replace(entry, binnings=binnings)

    def _bump_table(self, key: str) -> None:
        self._table_versions[key] = self._table_versions.get(key, 0) + 1
        self.ddl_clock += 1

    def _bump_incarnation(self, key: str) -> None:
        self._table_incarnations[key] = \
            self._table_incarnations.get(key, 0) + 1

    # ------------------------------------------------------------------
    # DDL: table functions
    # ------------------------------------------------------------------
    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        key = name.lower()
        with self._lock:
            self._functions[key] = TableFunctionEntry(
                name=key, function=function, schema=schema,
                invocation_cost=invocation_cost)
            self._function_versions[key] = \
                self._function_versions.get(key, 0) + 1
            self._function_incarnations[key] = \
                self._function_incarnations.get(key, 0) + 1
            self.ddl_clock += 1


def _capped(stats: ColumnStats,
            uniques_limit: int | None) -> ColumnStats:
    """Drop the retained unique set when it exceeds the cardinality
    cap: the visible statistics stay exact, but the column's next
    append pays the full recompute instead of carrying a near-copy of
    a unique-key column around forever."""
    if uniques_limit is not None and stats.uniques is not None and \
            stats.distinct_count > uniques_limit:
        stats.uniques = None
    return stats


def _compute_stats(table: Table,
                   uniques_limit: int | None = None
                   ) -> dict[str, ColumnStats]:
    stats: dict[str, ColumnStats] = {}
    for name in table.schema.names:
        values = table.column(name)
        if len(values) == 0:
            stats[name] = ColumnStats(distinct_count=0)
            continue
        dtype = table.schema.type_of(name)
        if dtype is t.STRING:
            uniques = frozenset(values.tolist())
            stats[name] = _capped(
                ColumnStats(distinct_count=len(uniques),
                            min_value=min(uniques),
                            max_value=max(uniques),
                            uniques=uniques), uniques_limit)
        else:
            if np.issubdtype(values.dtype, np.floating):
                # np.unique counts every NaN as its own distinct value
                # and would return NaN min/max, corrupting the proactive
                # cube threshold and speculative size estimates.
                values = values[~np.isnan(values)]
                if len(values) == 0:
                    stats[name] = ColumnStats(distinct_count=0)
                    continue
            uniques = np.unique(values)
            stats[name] = _capped(
                ColumnStats(distinct_count=int(len(uniques)),
                            min_value=uniques[0].item(),
                            max_value=uniques[-1].item(),
                            uniques=uniques), uniques_limit)
    return stats


def _merge_stats(old: dict[str, ColumnStats], delta: Table,
                 uniques_limit: int | None = None
                 ) -> dict[str, ColumnStats] | None:
    """Merge the delta batch's statistics into ``old`` exactly.

    Returns ``None`` when any column cannot be merged losslessly — no
    prior stats (registered with ``compute_stats=False``) or a non-empty
    column without retained uniques (cardinality cap hit, legacy
    construction) — signalling the caller to fall back to a full
    recompute of the merged table.
    """
    delta_stats = _compute_stats(delta, uniques_limit=uniques_limit)
    merged: dict[str, ColumnStats] = {}
    for name, fresh in delta_stats.items():
        prior = old.get(name)
        if prior is None:
            return None
        if prior.distinct_count == 0:
            # Empty (or all-NaN) prefix: the delta's stats are exact.
            merged[name] = fresh
            continue
        if fresh.distinct_count == 0:
            merged[name] = prior
            continue
        if prior.uniques is None or fresh.uniques is None:
            return None
        if isinstance(prior.uniques, frozenset):
            uniques = prior.uniques | fresh.uniques
            merged[name] = _capped(
                ColumnStats(distinct_count=len(uniques),
                            min_value=min(uniques),
                            max_value=max(uniques),
                            uniques=uniques), uniques_limit)
        else:
            uniques = np.union1d(prior.uniques, fresh.uniques)
            merged[name] = _capped(
                ColumnStats(distinct_count=int(len(uniques)),
                            min_value=uniques[0].item(),
                            max_value=uniques[-1].item(),
                            uniques=uniques), uniques_limit)
    return merged


__all__ = [
    "BinningSpec", "Catalog", "CatalogSnapshot", "CatalogView",
    "ColumnStats", "TableEntry", "TableFunction", "TableFunctionEntry",
]
