"""The catalog: named base tables, statistics, and table functions.

Statistics (row counts, per-column distinct counts, min/max) feed two parts
of the recycler:

* the proactive *cube caching* rules, which only fire when the selection
  column's distinct count is below a threshold (paper Section IV-B), and
* speculative size estimation for results that have never been seen.

Table functions (e.g. SkyServer's ``fGetNearbyObjEq``) are registered here
and appear in plans as leaf operators, exactly like scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import CatalogError
from . import types as t
from .table import Schema, Table

#: A table function takes literal arguments and produces a Table.
TableFunction = Callable[..., Table]


@dataclass
class ColumnStats:
    """Summary statistics for one column of a base table."""

    distinct_count: int
    min_value: object | None = None
    max_value: object | None = None


@dataclass
class BinningSpec:
    """How a high-cardinality ordered column can be binned.

    Used by the proactive "cube caching with binning" rule.  ``kind`` is
    either ``"year"`` (DATE columns binned to calendar years) or
    ``"width"`` (numeric columns binned as ``value // width``).
    """

    column: str
    kind: str
    width: int = 0  # only for kind == "width"

    def __post_init__(self) -> None:
        if self.kind not in ("year", "width"):
            raise CatalogError(f"unknown binning kind {self.kind!r}")
        if self.kind == "width" and self.width <= 0:
            raise CatalogError("width binning requires a positive width")


@dataclass
class TableEntry:
    """A base table together with its statistics."""

    name: str
    table: Table
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)
    binnings: dict[str, BinningSpec] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


@dataclass
class TableFunctionEntry:
    """A registered table function."""

    name: str
    function: TableFunction
    schema: Schema
    #: deterministic per-call cost units charged by the engine in addition
    #: to the per-output-tuple cost; lets expensive functions (cone search)
    #: look expensive to the benefit metric.
    invocation_cost: float = 0.0


class Catalog:
    """A registry of base tables and table functions."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._functions: dict[str, TableFunctionEntry] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table,
                       compute_stats: bool = True) -> TableEntry:
        """Register (or replace) a base table.

        When ``compute_stats`` is set, per-column distinct counts and
        min/max are computed eagerly; tiny tables make this cheap and the
        proactive rules rely on the distinct counts being present.
        """
        key = name.lower()
        entry = TableEntry(name=key, table=table)
        if compute_stats:
            entry.column_stats = _compute_stats(table)
        self._tables[key] = entry
        return entry

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name.lower()]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_entry(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table(self, name: str) -> Table:
        return self.table_entry(name).table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_count(self, table: str, column: str) -> int:
        """Distinct values of ``table.column`` (0 when unknown)."""
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        return stats.distinct_count if stats else 0

    def column_range(self, table: str,
                     column: str) -> tuple[object, object] | None:
        entry = self.table_entry(table)
        stats = entry.column_stats.get(column)
        if stats is None or stats.min_value is None:
            return None
        return stats.min_value, stats.max_value

    # ------------------------------------------------------------------
    # binning specs (drive cube caching with binning)
    # ------------------------------------------------------------------
    def register_binning(self, table: str, spec: BinningSpec) -> None:
        self.table_entry(table).binnings[spec.column] = spec

    def binning_for(self, table: str, column: str) -> BinningSpec | None:
        entry = self.table_entry(table)
        return entry.binnings.get(column)

    # ------------------------------------------------------------------
    # table functions
    # ------------------------------------------------------------------
    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        self._functions[name.lower()] = TableFunctionEntry(
            name=name.lower(), function=function, schema=schema,
            invocation_cost=invocation_cost)

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def function_entry(self, name: str) -> TableFunctionEntry:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown table function {name!r};"
                f" have {sorted(self._functions)}") from None

    def call_function(self, name: str, args: Sequence[object]) -> Table:
        entry = self.function_entry(name)
        result = entry.function(*args)
        if result.schema != entry.schema:
            raise CatalogError(
                f"table function {name!r} returned schema {result.schema!r},"
                f" registered {entry.schema!r}")
        return result


def _compute_stats(table: Table) -> dict[str, ColumnStats]:
    stats: dict[str, ColumnStats] = {}
    for name in table.schema.names:
        values = table.column(name)
        if len(values) == 0:
            stats[name] = ColumnStats(distinct_count=0)
            continue
        dtype = table.schema.type_of(name)
        if dtype is t.STRING:
            uniques = set(values.tolist())
            stats[name] = ColumnStats(distinct_count=len(uniques),
                                      min_value=min(uniques),
                                      max_value=max(uniques))
        else:
            uniques = np.unique(values)
            stats[name] = ColumnStats(distinct_count=int(len(uniques)),
                                      min_value=uniques[0].item(),
                                      max_value=uniques[-1].item())
    return stats
