"""Shared-memory column transport: a pickle-free table codec.

Process-sharded execution (``repro.engine.shard``) moves whole tables
between processes without pickling a single batch:

* **Registered tables** are encoded once into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment per table
  at pool creation.  Workers attach and map every fixed-width column as
  a zero-copy ``np.frombuffer`` view over the segment; STRING columns —
  stored as a length-prefixed byte arena — are decoded exactly once per
  worker (strings are Python objects and cannot be shared across
  processes anyway).
* **Result tables** travel back through a shared-memory ring
  (:mod:`repro.engine.shard.transport`) in the same encoding; the
  parent copies fixed-width payloads out of the ring (one memcpy, no
  pickle) so ring slots recycle immediately.

Layout (all sections 8-byte aligned so int64/float64 views over the
buffer are aligned)::

    int64 magic ("RBC1")  | int64 ncols | int64 nrows
    per column:
      int64 len(name)  | name utf-8  | pad to 8
      int64 len(dtype) | dtype utf-8 | pad to 8
      fixed width: nrows * itemsize raw bytes           | pad to 8
      STRING:      int64 offsets[nrows + 1] | utf-8 blob | pad to 8

``resource_tracker`` discipline: the *creator* of a segment owns its
name and is the only process that unlinks it.  Shard workers are
*spawned*, so on POSIX they share the parent's resource-tracker
process — registrations land in one per-name set, an attacher's
re-register is idempotent, and the creator's ``unlink`` balances the
books exactly once.  The one thing an attacher must *not* do is
unregister (that clobbers the creator's registration in the shared
tracker and the later unlink raises ``KeyError`` noise inside the
tracker); on Python ≥ 3.13 :func:`attach_segment` uses ``track=False``
to skip the redundant re-register outright.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import numpy as np

from ..errors import SchemaError
from . import types as t
from .table import Schema, Table

_MAGIC = 0x31434252  # "RBC1" little-endian
_INT = struct.Struct("<q")


def _align8(n: int) -> int:
    return (n + 7) & ~7


# ---------------------------------------------------------------------------
# size calculation
# ---------------------------------------------------------------------------
def encoded_nbytes(table: Table) -> int:
    """Exact encoded size of ``table`` (for sizing a segment or
    reserving ring space)."""
    total = 24  # magic, ncols, nrows
    for name in table.schema.names:
        dtype = table.schema.type_of(name)
        total += 8 + _align8(len(name.encode("utf-8")))
        total += 8 + _align8(len(dtype.name.encode("utf-8")))
        if dtype is t.STRING:
            blob = sum(len(v.encode("utf-8")) for v in table.column(name))
            total += _align8(8 * (table.num_rows + 1)) + _align8(blob)
        else:
            total += _align8(table.num_rows
                             * np.dtype(dtype.numpy_dtype).itemsize)
    return total


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------
def encode_table(table: Table, buf, offset: int = 0) -> int:
    """Encode ``table`` into ``buf`` (a writable buffer) starting at
    ``offset``; returns the end offset.  The caller sizes ``buf`` with
    :func:`encoded_nbytes`."""
    buf = memoryview(buf)
    pos = offset
    _INT.pack_into(buf, pos, _MAGIC)
    _INT.pack_into(buf, pos + 8, len(table.schema))
    _INT.pack_into(buf, pos + 16, table.num_rows)
    pos += 24
    for name in table.schema.names:
        dtype = table.schema.type_of(name)
        pos = _put_str(buf, pos, name)
        pos = _put_str(buf, pos, dtype.name)
        column = table.column(name)
        if dtype is t.STRING:
            encoded = [v.encode("utf-8") for v in column]
            offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
            if encoded:
                np.cumsum([len(e) for e in encoded],
                          out=offsets[1:], dtype=np.int64)
            pos = _put_bytes(buf, pos, offsets.tobytes())
            pos = _put_bytes(buf, pos, b"".join(encoded))
        else:
            arr = np.ascontiguousarray(column,
                                       dtype=np.dtype(dtype.numpy_dtype))
            pos = _put_bytes(buf, pos, arr.tobytes())
    return pos


def _put_str(buf: memoryview, pos: int, text: str) -> int:
    raw = text.encode("utf-8")
    _INT.pack_into(buf, pos, len(raw))
    pos += 8
    buf[pos:pos + len(raw)] = raw
    return pos + _align8(len(raw))


def _put_bytes(buf: memoryview, pos: int, raw: bytes) -> int:
    buf[pos:pos + len(raw)] = raw
    return pos + _align8(len(raw))


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------
def decode_table(buf, offset: int = 0,
                 copy: bool = True) -> tuple[Table, int]:
    """Decode one table from ``buf`` at ``offset``; returns ``(table,
    end_offset)``.

    With ``copy=False`` fixed-width columns are zero-copy
    ``np.frombuffer`` views into ``buf`` — the caller must keep the
    underlying mapping alive as long as the table (worker-side
    registered tables).  With ``copy=True`` every column owns its data
    (parent-side ring decode: the slot recycles immediately).  STRING
    columns are always materialized as fresh object arrays.
    """
    buf = memoryview(buf)
    pos = offset
    magic = _INT.unpack_from(buf, pos)[0]
    if magic != _MAGIC:
        raise SchemaError(f"bad shared-memory table header: {magic:#x}")
    ncols = _INT.unpack_from(buf, pos + 8)[0]
    nrows = _INT.unpack_from(buf, pos + 16)[0]
    pos += 24
    names: list[str] = []
    dtypes: list[t.DataType] = []
    columns: dict[str, np.ndarray] = {}
    for _ in range(ncols):
        name, pos = _get_str(buf, pos)
        dtype_name, pos = _get_str(buf, pos)
        dtype = t.type_from_name(dtype_name)
        names.append(name)
        dtypes.append(dtype)
        if dtype is t.STRING:
            offsets = np.frombuffer(buf, dtype=np.int64, count=nrows + 1,
                                    offset=pos)
            pos += _align8(8 * (nrows + 1))
            blob_len = int(offsets[-1]) if nrows else 0
            blob = bytes(buf[pos:pos + blob_len])
            pos += _align8(blob_len)
            values = np.empty(nrows, dtype=object)
            for i in range(nrows):
                values[i] = blob[offsets[i]:offsets[i + 1]].decode("utf-8")
            columns[name] = values
        else:
            np_dtype = np.dtype(dtype.numpy_dtype)
            arr = np.frombuffer(buf, dtype=np_dtype, count=nrows,
                                offset=pos)
            columns[name] = arr.copy() if copy else arr
            pos += _align8(nrows * np_dtype.itemsize)
    return Table(Schema(names, dtypes), columns), pos


def _get_str(buf: memoryview, pos: int) -> tuple[str, int]:
    length = _INT.unpack_from(buf, pos)[0]
    pos += 8
    raw = bytes(buf[pos:pos + length])
    return raw.decode("utf-8"), pos + _align8(length)


# ---------------------------------------------------------------------------
# segment lifecycle
# ---------------------------------------------------------------------------
def create_segment(nbytes: int,
                   name: str | None = None) -> shared_memory.SharedMemory:
    """Create a segment the calling process owns (and must unlink)."""
    return shared_memory.SharedMemory(create=True, name=name,
                                      size=max(nbytes, 8))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting unlink duty.

    Python < 3.13 has no ``track=False``; attaching then re-registers
    the name with the (spawn-shared) resource tracker, which is a
    harmless set-idempotent duplicate — the creator's eventual
    ``unlink`` unregisters it exactly once.  Do **not** unregister
    here: that would clobber the creator's registration in the shared
    tracker (see module docstring).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def close_segment(shm: shared_memory.SharedMemory,
                  unlink: bool = False) -> None:
    """Best-effort close (+ optional unlink) that tolerates live views:
    ``SharedMemory.close`` raises ``BufferError`` while zero-copy numpy
    views are still exported; unlinking is what actually releases the
    name, and the mapping itself goes with the process."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - view still exported
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def share_table(table: Table) -> shared_memory.SharedMemory:
    """Encode ``table`` into a fresh segment owned by the caller."""
    shm = create_segment(encoded_nbytes(table))
    encode_table(table, shm.buf)
    return shm


def attach_table(name: str) -> tuple[Table, shared_memory.SharedMemory]:
    """Map a shared table: fixed-width columns are zero-copy views into
    the segment, strings are decoded once.  The returned segment must
    outlive the table."""
    shm = attach_segment(name)
    table, _ = decode_table(shm.buf, copy=False)
    return table, shm
