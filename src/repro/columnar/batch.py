"""Record batches: the unit of data flow in the pipelined engine.

A :class:`Batch` is an ordered mapping of column name to numpy array, all
arrays having the same length.  Operators pass batches of roughly
``VECTOR_SIZE`` tuples down the pipeline — the "vector-at-a-time" model of
Vectorwise that the paper's recycler is integrated with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from . import types as t

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import Schema

#: Default number of tuples per vector, mirroring Vectorwise's ~1K vectors.
VECTOR_SIZE = 1024


class Batch:
    """An immutable-by-convention chunk of rows in columnar layout."""

    __slots__ = ("_columns", "_length", "_nbytes")

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns: dict[str, np.ndarray] = dict(columns)
        lengths = {len(a) for a in self._columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged batch: column lengths {sorted(lengths)}")
        self._length = lengths.pop() if lengths else 0
        self._nbytes: int | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, names: Sequence[str],
              dtypes: Sequence[t.DataType]) -> "Batch":
        """A zero-row batch with the given column names and types."""
        return cls({n: d.empty(0) for n, d in zip(names, dtypes)})

    @classmethod
    def from_rows(cls, names: Sequence[str], dtypes: Sequence[t.DataType],
                  rows: Iterable[Sequence]) -> "Batch":
        """Build a batch from an iterable of row tuples (tests, tiny data)."""
        rows = list(rows)
        columns = {}
        for i, (name, dtype) in enumerate(zip(names, dtypes)):
            raw = [r[i] for r in rows]
            if dtype is t.STRING:
                arr = np.array(raw, dtype=object)
            else:
                arr = np.array(raw, dtype=dtype.numpy_dtype)
            columns[name] = arr
        return cls(columns)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def names(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """The underlying name -> array mapping (do not mutate)."""
        return self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"batch has no column {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    # ------------------------------------------------------------------
    # transformations (each returns a new Batch; arrays are shared
    # wherever possible)
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Batch":
        """Keep only ``names``, in the given order."""
        return Batch({n: self.column(n) for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "Batch":
        """Rename columns; names absent from ``mapping`` are kept."""
        return Batch({mapping.get(n, n): a for n, a in self._columns.items()})

    def with_column(self, name: str, values: np.ndarray) -> "Batch":
        """Return a copy with ``name`` added or replaced."""
        if len(values) != self._length and self._columns:
            raise SchemaError(
                f"column {name!r} has {len(values)} rows, batch has"
                f" {self._length}")
        new = dict(self._columns)
        new[name] = values
        return Batch(new)

    def filter(self, mask: np.ndarray) -> "Batch":
        """Keep rows where ``mask`` is true."""
        if mask.dtype.kind != "b":
            raise SchemaError("filter mask must be boolean")
        return Batch({n: a[mask] for n, a in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Batch":
        """Gather rows by position."""
        return Batch({n: a[indices] for n, a in self._columns.items()})

    def slice(self, start: int, stop: int) -> "Batch":
        """Rows ``start:stop`` (zero-copy views for fixed-width columns)."""
        return Batch({n: a[start:stop] for n, a in self._columns.items()})

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Payload bytes of this batch (see :func:`types.array_nbytes`).

        Memoized: every operator's ``next()`` accounting asks for it,
        and batches are immutable, so the O(columns) walk runs once.
        """
        if self._nbytes is None:
            total = 0
            for arr in self._columns.values():
                total += t.array_nbytes(arr, t.infer_type(arr))
            self._nbytes = total
        return self._nbytes

    def row(self, i: int) -> tuple:
        """Row ``i`` as a Python tuple (tests and debugging)."""
        return tuple(arr[i] for arr in self._columns.values())

    def to_rows(self) -> list[tuple]:
        """All rows as Python tuples (tests and small results only)."""
        return [self.row(i) for i in range(self._length)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self._length} rows, cols={self.names})"


def concat_batches(batches: Sequence[Batch],
                   schema: "Schema | None" = None) -> Batch:
    """Concatenate batches with identical column layouts.

    ``schema`` supplies the column names and dtypes of the result when
    every input is empty (or absent), so empty results flow through
    call sites without special cases; without it, concatenating zero
    non-empty batches is an error.
    """
    batches = [b for b in batches if len(b) > 0]
    if not batches:
        if schema is None:
            raise SchemaError("cannot concatenate zero non-empty batches")
        return Batch.empty(schema.names, schema.types)
    names = batches[0].names
    for b in batches[1:]:
        if b.names != names:
            raise SchemaError(
                f"batch layout mismatch: {b.names} vs {names}")
    return Batch({
        n: np.concatenate([b.column(n) for b in batches]) for n in names
    })
