"""In-memory tables: named, typed column collections.

A :class:`Table` is the materialized form of a relation — base tables in the
catalog, recycled (cached) results, and final query results are all tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from . import types as t
from .batch import VECTOR_SIZE, Batch, concat_batches


class Schema:
    """An ordered list of (name, type) pairs."""

    __slots__ = ("_names", "_types", "_index")

    def __init__(self, names: Sequence[str],
                 dtypes: Sequence[t.DataType]) -> None:
        if len(names) != len(dtypes):
            raise SchemaError("names and dtypes must have equal length")
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if list(names).count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._names = list(names)
        self._types = list(dtypes)
        self._index = {n: i for i, n in enumerate(self._names)}

    @property
    def names(self) -> list[str]:
        return list(self._names)

    @property
    def types(self) -> list[t.DataType]:
        return list(self._types)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._names == other._names and self._types == other._types

    def __hash__(self) -> int:
        return hash((tuple(self._names), tuple(x.name for x in self._types)))

    def type_of(self, name: str) -> t.DataType:
        try:
            return self._types[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"schema has no column {name!r}; have {self._names}"
            ) from None

    def field(self, name: str) -> tuple[str, t.DataType]:
        return name, self.type_of(name)

    def select(self, names: Sequence[str]) -> "Schema":
        return Schema(list(names), [self.type_of(n) for n in names])

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        return Schema([mapping.get(n, n) for n in self._names], self._types)

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self._names + other._names, self._types + other._types)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{n}:{d.name}" for n, d in
                         zip(self._names, self._types))
        return f"Schema({cols})"


class Table:
    """A fully materialized relation."""

    __slots__ = ("schema", "_columns", "_nrows")

    def __init__(self, schema: Schema,
                 columns: Mapping[str, np.ndarray]) -> None:
        self.schema = schema
        self._columns = {n: t.coerce_array(np.asarray(columns[n]),
                                           schema.type_of(n))
                         for n in schema.names}
        lengths = {len(a) for a in self._columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged table: column lengths {sorted(lengths)}")
        self._nrows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, names: Sequence[str], dtypes: Sequence[t.DataType],
                  rows: Iterable[Sequence]) -> "Table":
        batch = Batch.from_rows(names, dtypes, rows)
        return cls(Schema(names, dtypes), batch.arrays)

    @classmethod
    def from_batches(cls, schema: Schema, batches: Sequence[Batch]) -> "Table":
        merged = concat_batches(batches, schema=schema)
        return cls(schema, {n: merged.column(n) for n in schema.names})

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, {n: schema.type_of(n).empty(0)
                            for n in schema.names})

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table has no column {name!r}; have {self.schema.names}"
            ) from None

    def nbytes(self) -> int:
        """Payload bytes — the quantity the recycler cache budgets."""
        total = 0
        for name in self.schema.names:
            total += t.array_nbytes(self._columns[name],
                                    self.schema.type_of(name))
        return total

    # ------------------------------------------------------------------
    # transformation / iteration
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        return Table(self.schema.select(names),
                     {n: self._columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        return Table(self.schema.rename(mapping),
                     {mapping.get(n, n): a for n, a in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "Table":
        return Table(self.schema,
                     {n: a[mask] for n, a in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.schema,
                     {n: a[indices] for n, a in self._columns.items()})

    def head(self, n: int) -> "Table":
        return Table(self.schema,
                     {name: a[:n] for name, a in self._columns.items()})

    def to_batches(self, vector_size: int = VECTOR_SIZE) -> list[Batch]:
        """Split the table into engine-sized vectors."""
        if self._nrows == 0:
            return []
        out = []
        for start in range(0, self._nrows, vector_size):
            stop = min(start + vector_size, self._nrows)
            out.append(Batch({n: a[start:stop]
                              for n, a in self._columns.items()}))
        return out

    def to_batch(self) -> Batch:
        """The whole table as a single batch."""
        return Batch(dict(self._columns))

    def to_rows(self) -> list[tuple]:
        """All rows as Python tuples (tests and small results only)."""
        arrays = [self._columns[n] for n in self.schema.names]
        return [tuple(a[i] for a in arrays) for i in range(self._nrows)]

    def iter_rows(self):
        """Rows as Python tuples, lazily — element-identical to
        :meth:`to_rows` without ever materializing the full row list
        (the streaming wire protocol and the DB-API cursor fetch from
        this, keeping peak buffered rows bounded by their chunk size)."""
        arrays = [self._columns[n] for n in self.schema.names]
        for i in range(self._nrows):
            yield tuple(a[i] for a in arrays)

    def sorted_rows(self) -> list[tuple]:
        """Rows in a canonical order — for order-insensitive comparisons."""
        return sorted(self.to_rows(), key=lambda r: tuple(map(repr, r)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self._nrows} rows, {self.schema!r})"
