"""Column data types for the columnar substrate.

The engine supports a deliberately small but complete set of scalar types:

========  =======================  ======================================
Type      numpy representation     Notes
========  =======================  ======================================
INT64     ``int64``                integers, also used for keys
FLOAT64   ``float64``              all decimals (TPC-H prices etc.)
BOOL      ``bool_``                selection vectors, predicates
STRING    ``object`` (str)         dictionary-free variable width strings
DATE      ``int32``                days since 1970-01-01 (proleptic)
========  =======================  ======================================

Dates are plain day counts so that range predicates, binning (``year()``)
and arithmetic stay cheap and fully vectorized.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from ..errors import TypeError_

_EPOCH = _dt.date(1970, 1, 1)


@dataclass(frozen=True)
class DataType:
    """A scalar column type.

    Instances are interned module-level constants (:data:`INT64` etc.);
    compare them with ``is`` or ``==`` interchangeably.
    """

    name: str
    numpy_dtype: str
    fixed_width: int  # bytes per value; 0 means variable width (STRING)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __reduce__(self):
        # Pickling must preserve interning: plans (and the schemas they
        # embed) cross process boundaries in sharded execution, and every
        # ``dtype is STRING`` check would silently misclassify a
        # by-value copy.
        return (type_from_name, (self.name,))

    @property
    def is_numeric(self) -> bool:
        return self.name in ("INT64", "FLOAT64")

    @property
    def is_ordered(self) -> bool:
        """Whether values of this type support range comparisons."""
        return self.name in ("INT64", "FLOAT64", "DATE", "STRING")

    def empty(self, length: int = 0) -> np.ndarray:
        """Return an empty (zeroed) numpy array of this type."""
        if self is STRING:
            return np.empty(length, dtype=object)
        return np.zeros(length, dtype=self.numpy_dtype)


INT64 = DataType("INT64", "int64", 8)
FLOAT64 = DataType("FLOAT64", "float64", 8)
BOOL = DataType("BOOL", "bool", 1)
STRING = DataType("STRING", "object", 0)
DATE = DataType("DATE", "int32", 4)

ALL_TYPES = (INT64, FLOAT64, BOOL, STRING, DATE)
_BY_NAME = {t.name: t for t in ALL_TYPES}

# Average payload assumed per string value when estimating result sizes;
# used only for cache-size accounting of variable-width columns for which
# no sample is available.
DEFAULT_STRING_WIDTH = 16


def type_from_name(name: str) -> DataType:
    """Look up a type by its name (``"INT64"``, ``"DATE"``, ...)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeError_(f"unknown data type: {name!r}") from None


def infer_type(values: np.ndarray) -> DataType:
    """Infer the library type of a numpy array."""
    kind = values.dtype.kind
    if kind == "b":
        return BOOL
    if kind in ("i", "u"):
        return DATE if values.dtype.itemsize == 4 else INT64
    if kind == "f":
        return FLOAT64
    if kind == "O" or kind in ("U", "S"):
        return STRING
    raise TypeError_(f"cannot infer column type from dtype {values.dtype}")


def coerce_array(values: np.ndarray, dtype: DataType) -> np.ndarray:
    """Coerce ``values`` to the numpy representation of ``dtype``."""
    if dtype is STRING:
        if values.dtype.kind != "O":
            return values.astype(object)
        return values
    return np.asarray(values, dtype=dtype.numpy_dtype)


def common_numeric_type(a: DataType, b: DataType) -> DataType:
    """The result type of arithmetic between two numeric/date operands."""
    if FLOAT64 in (a, b):
        return FLOAT64
    if a is DATE and b is DATE:
        return INT64  # date difference is a day count
    if DATE in (a, b):
        return DATE  # date +/- integer days
    return INT64


def date_to_days(value: str | _dt.date) -> int:
    """Convert a date (or an ISO ``YYYY-MM-DD`` string) to a day count."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Convert a day count back to a :class:`datetime.date`."""
    return _EPOCH + _dt.timedelta(days=int(days))


def days_to_iso(days: int) -> str:
    """Render a day count as an ISO date string."""
    return days_to_date(days).isoformat()


def years_of(days: np.ndarray) -> np.ndarray:
    """Vectorized extraction of the calendar year from day counts."""
    dates = np.asarray(days, dtype="int64").astype("datetime64[D]")
    return dates.astype("datetime64[Y]").astype(np.int64) + 1970


def months_of(days: np.ndarray) -> np.ndarray:
    """Vectorized extraction of the calendar month (1..12)."""
    dates = np.asarray(days, dtype="int64").astype("datetime64[D]")
    months = dates.astype("datetime64[M]").astype(np.int64)
    return months % 12 + 1


def year_month_of(days: np.ndarray) -> np.ndarray:
    """Vectorized ``year * 100 + month`` bin (used by binning rules)."""
    dates = np.asarray(days, dtype="int64").astype("datetime64[D]")
    months = dates.astype("datetime64[M]").astype(np.int64)
    return (months // 12 + 1970) * 100 + months % 12 + 1


def first_day_of_year(year: int) -> int:
    """Day count of January 1st of ``year``."""
    return date_to_days(_dt.date(int(year), 1, 1))


def first_day_of_month(year: int, month: int) -> int:
    """Day count of the first day of ``year-month``."""
    return date_to_days(_dt.date(int(year), int(month), 1))


def array_nbytes(values: np.ndarray, dtype: DataType) -> int:
    """Memory footprint of a column payload in bytes.

    STRING columns are charged per-character (plus the object pointer is
    deliberately ignored: the recycler cares about payload volume, and a
    deterministic number keeps experiments reproducible across platforms).
    """
    if dtype is STRING:
        if len(values) == 0:
            return 0
        return int(sum(len(v) for v in values))
    return int(values.nbytes)
