"""repro — a reproduction of "Recycling in Pipelined Query Evaluation"
(Nagel, Boncz, Viglas — ICDE 2013).

Public entry points:

* :class:`repro.db.Database` — catalog + recycler + SQL/plan execution;
* :mod:`repro.plan` (``q`` builder) and :mod:`repro.expr` — programmatic
  query construction;
* :mod:`repro.recycler` — the paper's contribution as a library;
* :mod:`repro.dbapi` — PEP 249 (DB-API 2.0) driver over the same core;
* :mod:`repro.server` — asyncio TCP server with admission control,
  plus the blocking client;
* :mod:`repro.workloads` — TPC-H and SkyServer workload generators;
* :mod:`repro.harness` — experiment runners for every paper figure and
  the serving-layer load generator.

``repro.server`` (and the exceptions ``ServerError`` /
``ServerOverloaded`` / ``ServerUnavailable`` in :mod:`repro.errors`)
are imported lazily by their subpackage — import ``repro.server``
directly; the flat namespace stays transport-free.
"""

__version__ = "1.0.0"

from .columnar import BinningSpec, Catalog, Schema, Table  # noqa: E402
from .db import Database  # noqa: E402
from .engine import (CancellationToken, CostModel, DEFAULT_COST_MODEL,  # noqa: E402
                     QueryResult)
from .errors import (QueryAborted, QueryCancelled,  # noqa: E402
                     QueryTimeout)
from .recycler import Recycler, RecyclerConfig  # noqa: E402
from .session import Session, SessionPool  # noqa: E402

__all__ = [
    "BinningSpec", "CancellationToken", "Catalog", "CostModel",
    "DEFAULT_COST_MODEL", "Database", "QueryAborted", "QueryCancelled",
    "QueryResult", "QueryTimeout", "Recycler", "RecyclerConfig",
    "Schema", "Session", "SessionPool", "Table", "__version__",
]
