"""Expression AST with vectorized evaluation and canonical keys.

Three capabilities matter to the rest of the system:

* ``eval(batch)``: vectorized numpy evaluation against a record batch;
* ``key(mapping)``: a canonical, hashable representation of the expression
  with column names translated through a query->graph name mapping — this
  is what recycler-graph matching compares (paper Section III-A, the
  ``matches_e`` parameter test);
* ``skeleton()``: the same shape with column names blanked out — a
  mapping-independent value that feeds the per-node hash keys used to find
  matching candidates quickly.

Commutative operators canonicalize their operand order inside ``key`` so
that ``a = b`` matches ``b = a`` and conjunct order does not matter.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable, Mapping, Sequence

import numpy as np

from ..columnar import types as t
from ..columnar.batch import Batch
from ..columnar.table import Schema
from ..errors import ExpressionError

NameMapping = Mapping[str, str]

_CMP_SWAP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


class Expr:
    """Base class for scalar expressions."""

    __slots__ = ()

    # -- interface ------------------------------------------------------
    def dtype(self, schema: Schema) -> t.DataType:
        raise NotImplementedError

    def eval(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        return ()

    def columns(self) -> frozenset[str]:
        """All column names referenced anywhere in the expression."""
        out: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Col):
                out.add(node.name)
            stack.extend(node.children())
        return frozenset(out)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        """Canonical hashable form, column names mapped via ``mapping``."""
        raise NotImplementedError

    def skeleton(self) -> tuple:
        """Like :meth:`key` but with every column name blanked."""
        return _skeletonize(self.key())

    def rename(self, mapping: NameMapping) -> "Expr":
        """A copy with referenced columns renamed via ``mapping``."""
        raise NotImplementedError

    # -- sugar ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


def _skeletonize(key: tuple) -> tuple:
    if len(key) == 2 and key[0] == "col":
        return ("col", "?")
    out = []
    for part in key:
        if isinstance(part, tuple):
            out.append(_skeletonize(part))
        else:
            out.append(part)
    return tuple(out)


def _mapped(name: str, mapping: NameMapping | None) -> str:
    if mapping is None:
        return name
    return mapping.get(name, name)


class Col(Expr):
    """A reference to an input column."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def dtype(self, schema: Schema) -> t.DataType:
        return schema.type_of(self.name)

    def eval(self, batch: Batch) -> np.ndarray:
        return batch.column(self.name)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("col", _mapped(self.name, mapping))

    def rename(self, mapping: NameMapping) -> "Col":
        return Col(mapping.get(self.name, self.name))

    def __repr__(self) -> str:
        return self.name


class Lit(Expr):
    """A literal constant with an explicit type."""

    __slots__ = ("value", "_dtype")

    def __init__(self, value: object, dtype: t.DataType | None = None) -> None:
        if dtype is None:
            dtype = _infer_literal_type(value)
        self.value = value
        self._dtype = dtype

    @classmethod
    def date(cls, iso: str) -> "Lit":
        """A DATE literal from an ISO string."""
        return cls(t.date_to_days(iso), t.DATE)

    def dtype(self, schema: Schema) -> t.DataType:
        return self._dtype

    def eval(self, batch: Batch) -> np.ndarray:
        if self._dtype is t.STRING:
            out = np.empty(len(batch), dtype=object)
            out[:] = self.value
            return out
        return np.full(len(batch), self.value,
                       dtype=self._dtype.numpy_dtype)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("lit", self._dtype.name, self.value)

    def rename(self, mapping: NameMapping) -> "Lit":
        return self

    def __repr__(self) -> str:
        if self._dtype is t.DATE:
            return f"date'{t.days_to_iso(self.value)}'"
        return repr(self.value)


def _infer_literal_type(value: object) -> t.DataType:
    if isinstance(value, bool):
        return t.BOOL
    if isinstance(value, int):
        return t.INT64
    if isinstance(value, float):
        return t.FLOAT64
    if isinstance(value, str):
        return t.STRING
    raise ExpressionError(f"cannot infer literal type of {value!r}")


_ARITH_FUNCS: dict[str, Callable] = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
    "%": np.mod,
}


class Arith(Expr):
    """Binary arithmetic: ``+ - * / %``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_FUNCS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def dtype(self, schema: Schema) -> t.DataType:
        lt, rt = self.left.dtype(schema), self.right.dtype(schema)
        if self.op == "/":
            return t.FLOAT64
        return t.common_numeric_type(lt, rt)

    def eval(self, batch: Batch) -> np.ndarray:
        left = self.left.eval(batch)
        right = self.right.eval(batch)
        result = _ARITH_FUNCS[self.op](left, right)
        return result

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        lk, rk = self.left.key(mapping), self.right.key(mapping)
        if self.op in ("+", "*") and rk < lk:
            lk, rk = rk, lk  # commutative: canonical operand order
        return ("arith", self.op, lk, rk)

    def rename(self, mapping: NameMapping) -> "Arith":
        return Arith(self.op, self.left.rename(mapping),
                     self.right.rename(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Cmp(Expr):
    """Binary comparison: ``= <> < <= > >=`` (boolean result)."""

    __slots__ = ("op", "left", "right")

    _FUNCS = {"=": np.equal, "<>": np.not_equal, "<": np.less,
              "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self._FUNCS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        left = self.left.eval(batch)
        right = self.right.eval(batch)
        return np.asarray(self._FUNCS[self.op](left, right), dtype=bool)

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        lk, rk = self.left.key(mapping), self.right.key(mapping)
        op = self.op
        # Canonicalize: symmetric ops order operands; strict/loose
        # inequalities normalize so the lexicographically smaller key is on
        # the left.
        if op in ("=", "<>"):
            if rk < lk:
                lk, rk = rk, lk
        elif rk < lk:
            lk, rk = rk, lk
            op = _CMP_SWAP[op]
        return ("cmp", op, lk, rk)

    def rename(self, mapping: NameMapping) -> "Cmp":
        return Cmp(self.op, self.left.rename(mapping),
                   self.right.rename(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """N-ary conjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]) -> None:
        if not args:
            raise ExpressionError("AND requires at least one operand")
        flattened: list[Expr] = []
        for a in args:
            if isinstance(a, And):
                flattened.extend(a.args)
            else:
                flattened.append(a)
        self.args = tuple(flattened)

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        result = np.asarray(self.args[0].eval(batch), dtype=bool)
        for arg in self.args[1:]:
            result = result & np.asarray(arg.eval(batch), dtype=bool)
        return result

    def children(self) -> Sequence[Expr]:
        return self.args

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("and", tuple(sorted(a.key(mapping) for a in self.args)))

    def rename(self, mapping: NameMapping) -> "And":
        return And([a.rename(mapping) for a in self.args])

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.args)) + ")"


class Or(Expr):
    """N-ary disjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]) -> None:
        if not args:
            raise ExpressionError("OR requires at least one operand")
        flattened: list[Expr] = []
        for a in args:
            if isinstance(a, Or):
                flattened.extend(a.args)
            else:
                flattened.append(a)
        self.args = tuple(flattened)

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        result = np.asarray(self.args[0].eval(batch), dtype=bool)
        for arg in self.args[1:]:
            result = result | np.asarray(arg.eval(batch), dtype=bool)
        return result

    def children(self) -> Sequence[Expr]:
        return self.args

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("or", tuple(sorted(a.key(mapping) for a in self.args)))

    def rename(self, mapping: NameMapping) -> "Or":
        return Or([a.rename(mapping) for a in self.args])

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.args)) + ")"


class Not(Expr):
    """Boolean negation."""

    __slots__ = ("arg",)

    def __init__(self, arg: Expr) -> None:
        self.arg = arg

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        return ~np.asarray(self.arg.eval(batch), dtype=bool)

    def children(self) -> Sequence[Expr]:
        return (self.arg,)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("not", self.arg.key(mapping))

    def rename(self, mapping: NameMapping) -> "Not":
        return Not(self.arg.rename(mapping))

    def __repr__(self) -> str:
        return f"(NOT {self.arg!r})"


class InList(Expr):
    """Membership test against a literal value list.

    SQL three-valued-logic edge cases are folded into two-valued
    results the way a NULL-free engine must: an empty ``IN ()`` is
    uniformly false and an empty ``NOT IN ()`` uniformly true, and a
    ``NOT IN`` probe over a float column treats NaN as *unknown* — a
    NaN operand is excluded from the result (``NaN NOT IN (…)`` is not
    true), matching the fact that ``NaN = v`` is already false for
    every ``v`` on the positive side.
    """

    __slots__ = ("arg", "values", "negated")

    def __init__(self, arg: Expr, values: Sequence[object],
                 negated: bool = False) -> None:
        self.arg = arg
        self.values = tuple(values)
        self.negated = bool(negated)

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        data = self.arg.eval(batch)
        result = np.zeros(len(data), dtype=bool)
        for value in self.values:
            result |= np.asarray(data == value, dtype=bool)
        if not self.negated:
            return result
        result = ~result
        arr = np.asarray(data)
        # NaN is only *unknown* when a comparison actually happens; the
        # empty NOT IN () is a vacuous conjunction and stays all-true.
        if self.values and arr.dtype.kind == "f":
            result &= ~np.isnan(arr)
        return result

    def children(self) -> Sequence[Expr]:
        return (self.arg,)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        # keep the historical key for the non-negated form so existing
        # cache fingerprints survive; negation gets a distinct suffix.
        base = ("in", self.arg.key(mapping),
                tuple(sorted(self.values, key=repr)))
        if self.negated:
            return base + ("not",)
        return base

    def rename(self, mapping: NameMapping) -> "InList":
        return InList(self.arg.rename(mapping), self.values, self.negated)

    def __repr__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.arg!r} {op} {list(self.values)!r})"


@lru_cache(maxsize=512)
def _like_to_regex(pattern: str) -> re.Pattern:
    """Compile a LIKE pattern; cached so the plan-rewrite machinery
    (``rename`` builds fresh ``Like`` nodes on every reuse
    substitution) never recompiles a pattern it has seen."""
    parts = []
    for chunk in re.split(r"([%_])", pattern):
        if chunk == "%":
            parts.append(".*")
        elif chunk == "_":
            parts.append(".")
        else:
            parts.append(re.escape(chunk))
    return re.compile("^" + "".join(parts) + "$")


@lru_cache(maxsize=512)
def _classify_like(pattern: str) -> tuple[str, str]:
    """Map a LIKE pattern onto a cheaper string primitive when its
    shape allows: ``("exact", s)`` for wildcard-free patterns, then
    ``("prefix", s)`` for ``s%``, ``("suffix", s)`` for ``%s``,
    ``("contains", s)`` for ``%s%``, else ``("regex", pattern)``."""
    def literal(s: str) -> bool:
        return "%" not in s and "_" not in s

    if literal(pattern):
        return ("exact", pattern)
    if pattern.endswith("%") and literal(pattern[:-1]):
        return ("prefix", pattern[:-1])
    if pattern.startswith("%") and literal(pattern[1:]):
        return ("suffix", pattern[1:])
    if len(pattern) >= 2 and pattern.startswith("%") \
            and pattern.endswith("%") and literal(pattern[1:-1]):
        return ("contains", pattern[1:-1])
    return ("regex", pattern)


class Like(Expr):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (literal pattern).

    Patterns whose shape allows it skip the regex engine entirely:
    wildcard-free patterns become one vectorized equality, and
    ``s%`` / ``%s`` / ``%s%`` use ``str.startswith`` / ``str.endswith``
    / ``in`` — several times cheaper per row than ``re.match``.
    Everything else (inner ``%``, any ``_``) takes the compiled-regex
    path, with compilation cached per pattern (:func:`_like_to_regex`).
    """

    __slots__ = ("arg", "pattern", "negated", "_regex", "_kind",
                 "_literal")

    def __init__(self, arg: Expr, pattern: str, negated: bool = False) -> None:
        self.arg = arg
        self.pattern = pattern
        self.negated = negated
        self._regex = _like_to_regex(pattern)
        self._kind, self._literal = _classify_like(pattern)

    def dtype(self, schema: Schema) -> t.DataType:
        return t.BOOL

    def eval(self, batch: Batch) -> np.ndarray:
        data = self.arg.eval(batch)
        kind, literal = self._kind, self._literal
        if kind == "exact":
            result = np.asarray(data == literal, dtype=bool)
        elif kind == "prefix":
            result = np.fromiter((v.startswith(literal) for v in data),
                                 dtype=bool, count=len(data))
        elif kind == "suffix":
            result = np.fromiter((v.endswith(literal) for v in data),
                                 dtype=bool, count=len(data))
        elif kind == "contains":
            result = np.fromiter((literal in v for v in data),
                                 dtype=bool, count=len(data))
        else:
            match = self._regex.match
            result = np.fromiter((match(v) is not None for v in data),
                                 dtype=bool, count=len(data))
        return ~result if self.negated else result

    def children(self) -> Sequence[Expr]:
        return (self.arg,)

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("like", self.arg.key(mapping), self.pattern, self.negated)

    def rename(self, mapping: NameMapping) -> "Like":
        return Like(self.arg.rename(mapping), self.pattern, self.negated)

    def __repr__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.arg!r} {op} {self.pattern!r})"


class Func(Expr):
    """A scalar function call.

    Supported functions (all vectorized):

    ``year``, ``month``, ``yearmonth`` (DATE -> INT64 bins),
    ``abs``, ``round``, ``floor`` (numeric), ``bin`` (``bin(x, width)`` =
    ``floor(x / width)`` — binning helper), ``substr`` (1-based
    ``substr(s, start, length)``), ``length``, ``upper``, ``lower``,
    ``startswith(s, prefix)``, ``min2``/``max2`` (two-argument scalar
    min/max), ``extract_days`` (DATE -> raw day count).
    """

    __slots__ = ("name", "args")

    _NUMERIC_RESULT = {"abs", "round", "floor", "min2", "max2"}

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        self.name = name.lower()
        self.args = tuple(args)
        _check_function_arity(self.name, len(self.args))

    def dtype(self, schema: Schema) -> t.DataType:
        name = self.name
        if name in ("year", "month", "yearmonth", "length", "bin",
                    "extract_days", "floor"):
            return t.INT64
        if name in ("substr", "upper", "lower"):
            return t.STRING
        if name == "startswith":
            return t.BOOL
        if name in ("abs", "round", "min2", "max2"):
            return self.args[0].dtype(schema)
        raise ExpressionError(f"unknown function {self.name!r}")

    def eval(self, batch: Batch) -> np.ndarray:
        name = self.name
        first = self.args[0].eval(batch)
        if name == "year":
            return t.years_of(first)
        if name == "month":
            return t.months_of(first)
        if name == "yearmonth":
            return t.year_month_of(first)
        if name == "extract_days":
            return np.asarray(first, dtype=np.int64)
        if name == "abs":
            return np.abs(first)
        if name == "round":
            digits = int(_literal_arg(self.args[1])) if len(self.args) > 1 \
                else 0
            return np.round(first, digits)
        if name == "floor":
            return np.floor(first).astype(np.int64)
        if name == "bin":
            width = int(_literal_arg(self.args[1]))
            return np.floor_divide(np.asarray(first, dtype=np.int64), width)
        if name == "length":
            return np.fromiter((len(v) for v in first), dtype=np.int64,
                               count=len(first))
        if name == "upper":
            out = np.empty(len(first), dtype=object)
            out[:] = [v.upper() for v in first]
            return out
        if name == "lower":
            out = np.empty(len(first), dtype=object)
            out[:] = [v.lower() for v in first]
            return out
        if name == "substr":
            start = int(_literal_arg(self.args[1]))
            length = int(_literal_arg(self.args[2]))
            lo = start - 1
            out = np.empty(len(first), dtype=object)
            out[:] = [v[lo:lo + length] for v in first]
            return out
        if name == "startswith":
            prefix = str(_literal_arg(self.args[1]))
            return np.fromiter((v.startswith(prefix) for v in first),
                               dtype=bool, count=len(first))
        if name == "min2":
            return np.minimum(first, self.args[1].eval(batch))
        if name == "max2":
            return np.maximum(first, self.args[1].eval(batch))
        raise ExpressionError(f"unknown function {self.name!r}")

    def children(self) -> Sequence[Expr]:
        return self.args

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("func", self.name,
                tuple(a.key(mapping) for a in self.args))

    def rename(self, mapping: NameMapping) -> "Func":
        return Func(self.name, [a.rename(mapping) for a in self.args])

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


_FUNCTION_ARITY = {
    "year": (1, 1), "month": (1, 1), "yearmonth": (1, 1),
    "extract_days": (1, 1), "abs": (1, 1), "round": (1, 2),
    "floor": (1, 1), "bin": (2, 2), "length": (1, 1), "upper": (1, 1),
    "lower": (1, 1), "substr": (3, 3), "startswith": (2, 2),
    "min2": (2, 2), "max2": (2, 2),
}


def _check_function_arity(name: str, arity: int) -> None:
    bounds = _FUNCTION_ARITY.get(name)
    if bounds is None:
        raise ExpressionError(f"unknown function {name!r}")
    low, high = bounds
    if not low <= arity <= high:
        raise ExpressionError(
            f"function {name!r} takes {low}..{high} arguments, got {arity}")


def _literal_arg(expr: Expr) -> object:
    if not isinstance(expr, Lit):
        raise ExpressionError(
            f"argument {expr!r} must be a literal constant")
    return expr.value


class Case(Expr):
    """``CASE WHEN cond THEN value ... ELSE other END``.

    All branch values must share a type; the ELSE branch is mandatory at
    this level (SQL's implicit NULL default does not exist in this
    NULL-free engine — the binder supplies an explicit zero/empty).
    """

    __slots__ = ("whens", "otherwise")

    def __init__(self, whens: Sequence[tuple[Expr, Expr]],
                 otherwise: Expr) -> None:
        if not whens:
            raise ExpressionError("CASE requires at least one WHEN")
        self.whens = [(c, v) for c, v in whens]
        self.otherwise = otherwise

    def dtype(self, schema: Schema) -> t.DataType:
        return self.whens[0][1].dtype(schema)

    def eval(self, batch: Batch) -> np.ndarray:
        branches = [value.eval(batch) for _, value in self.whens]
        result = self.otherwise.eval(batch)
        if result.dtype.kind != "O":
            # Promote to the common numeric type of all branches so an
            # integer ELSE 0 does not truncate float THEN values.
            common = np.result_type(result,
                                    *[b for b in branches
                                      if b.dtype.kind != "O"])
            result = np.array(result, dtype=common, copy=True)
        else:
            result = result.copy()
        taken = np.zeros(len(batch), dtype=bool)
        for (condition, _), values in zip(self.whens, branches):
            mask = np.asarray(condition.eval(batch), dtype=bool) & ~taken
            if mask.any():
                result[mask] = values[mask]
            taken |= mask
        return result

    def children(self) -> Sequence[Expr]:
        out: list[Expr] = []
        for condition, value in self.whens:
            out.append(condition)
            out.append(value)
        out.append(self.otherwise)
        return out

    def key(self, mapping: NameMapping | None = None) -> tuple:
        return ("case",
                tuple((c.key(mapping), v.key(mapping))
                      for c, v in self.whens),
                self.otherwise.key(mapping))

    def rename(self, mapping: NameMapping) -> "Case":
        return Case([(c.rename(mapping), v.rename(mapping))
                     for c, v in self.whens],
                    self.otherwise.rename(mapping))

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.whens)
        return f"(CASE {parts} ELSE {self.otherwise!r} END)"


# ----------------------------------------------------------------------
# aggregate specifications (not scalar expressions; consumed by Aggregate)
# ----------------------------------------------------------------------
AGG_FUNCTIONS = ("sum", "count", "avg", "min", "max", "count_star",
                 "count_distinct")


class AggSpec:
    """One aggregate output of a GROUP BY operator."""

    __slots__ = ("func", "arg", "name")

    def __init__(self, func: str, arg: Expr | None, name: str) -> None:
        func = func.lower()
        if func not in AGG_FUNCTIONS:
            raise ExpressionError(f"unknown aggregate {func!r}")
        if func == "count_star":
            arg = None
        elif arg is None:
            raise ExpressionError(f"aggregate {func!r} requires an argument")
        self.func = func
        self.arg = arg
        self.name = name

    def dtype(self, schema: Schema) -> t.DataType:
        if self.func in ("count", "count_star", "count_distinct"):
            return t.INT64
        if self.func == "avg":
            return t.FLOAT64
        assert self.arg is not None
        arg_type = self.arg.dtype(schema)
        if self.func == "sum":
            return t.FLOAT64 if arg_type is t.FLOAT64 else t.INT64
        return arg_type  # min / max preserve the input type

    def key(self, mapping: NameMapping | None = None) -> tuple:
        arg_key = self.arg.key(mapping) if self.arg is not None else ()
        return ("agg", self.func, arg_key)

    def rename(self, mapping: NameMapping) -> "AggSpec":
        arg = self.arg.rename(mapping) if self.arg is not None else None
        return AggSpec(self.func, arg, self.name)

    def with_name(self, name: str) -> "AggSpec":
        return AggSpec(self.func, self.arg, name)

    def __repr__(self) -> str:
        inner = repr(self.arg) if self.arg is not None else "*"
        return f"{self.func}({inner}) AS {self.name}"
