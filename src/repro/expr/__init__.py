"""Expression engine: AST, vectorized evaluation, canonical keys."""

from .analysis import (ColumnRange, NEG_INF, POS_INF, PredicateProfile,
                       conjoin, profile_predicate, split_conjuncts)
from .implication import implies, profile_implies
from .nodes import (AGG_FUNCTIONS, AggSpec, And, Arith, Case, Cmp, Col, Expr,
                    Func, InList, Like, Lit, Not, Or)

__all__ = [
    "AGG_FUNCTIONS", "AggSpec", "And", "Arith", "Case", "Cmp", "Col",
    "ColumnRange",
    "Expr", "Func", "InList", "Like", "Lit", "NEG_INF", "Not", "Or",
    "POS_INF", "PredicateProfile", "conjoin", "implies", "profile_implies",
    "profile_predicate", "split_conjuncts",
]
