"""Predicate analysis: conjunct splitting and single-column range extraction.

These utilities feed the subsumption implication test and the proactive
binning rule, which both need to reason about what a selection predicate
constrains.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .nodes import And, Cmp, Col, Expr, InList, Lit

#: Sentinels for unbounded range endpoints.
NEG_INF = object()
POS_INF = object()


def split_conjuncts(pred: Expr) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(pred, And):
        out: list[Expr] = []
        for arg in pred.args:
            out.extend(split_conjuncts(arg))
        return out
    return [pred]


def conjoin(conjuncts: list[Expr]) -> Expr:
    """Inverse of :func:`split_conjuncts` (requires >= 1 conjunct)."""
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(conjuncts)


@dataclass
class ColumnRange:
    """A conjunction of constraints on one column.

    ``low``/``high`` are literal values or the infinity sentinels;
    ``values`` is a finite allowed set when equality/IN constraints were
    seen (``None`` means unconstrained by equalities).
    """

    column: str
    low: object = NEG_INF
    low_inclusive: bool = True
    high: object = POS_INF
    high_inclusive: bool = True
    values: frozenset | None = None

    def tighten_low(self, bound: object, inclusive: bool) -> "ColumnRange":
        if self.low is NEG_INF or bound > self.low or \
                (bound == self.low and not inclusive):
            return replace(self, low=bound, low_inclusive=inclusive)
        return self

    def tighten_high(self, bound: object, inclusive: bool) -> "ColumnRange":
        if self.high is POS_INF or bound < self.high or \
                (bound == self.high and not inclusive):
            return replace(self, high=bound, high_inclusive=inclusive)
        return self

    def restrict_values(self, allowed: frozenset) -> "ColumnRange":
        if self.values is None:
            return replace(self, values=allowed)
        return replace(self, values=self.values & allowed)

    # ------------------------------------------------------------------
    def contains_range(self, other: "ColumnRange") -> bool:
        """True when every value satisfying ``other`` satisfies ``self``.

        Conservative: returns ``False`` when containment cannot be proven.
        """
        if self.values is not None:
            if other.values is None or not other.values <= self.values:
                return False
        if self.low is not NEG_INF:
            if other.values is not None:
                if not all(_ge(v, self.low, self.low_inclusive)
                           for v in other.values):
                    return False
            elif other.low is NEG_INF:
                return False
            elif other.low < self.low:
                return False
            elif other.low == self.low and \
                    other.low_inclusive and not self.low_inclusive:
                return False
        if self.high is not POS_INF:
            if other.values is not None:
                if not all(_le(v, self.high, self.high_inclusive)
                           for v in other.values):
                    return False
            elif other.high is POS_INF:
                return False
            elif other.high > self.high:
                return False
            elif other.high == self.high and \
                    other.high_inclusive and not self.high_inclusive:
                return False
        return True


def _ge(value: object, bound: object, inclusive: bool) -> bool:
    return value >= bound if inclusive else value > bound


def _le(value: object, bound: object, inclusive: bool) -> bool:
    return value <= bound if inclusive else value < bound


def is_sargable_conjunct(expr: Expr) -> bool:
    """True when ``expr`` is a column-vs-literal range, equality, or IN
    conjunct — the class :func:`profile_predicate` turns into
    :class:`ColumnRange` constraints.  The plan optimizer's sargable/
    residual select split keys off this predicate."""
    return _parse_range_conjunct(expr) is not None


@dataclass
class PredicateProfile:
    """Decomposition of a predicate into per-column ranges + a residue.

    ``ranges`` holds the constraints that could be understood as
    column-vs-literal ranges or finite value sets; ``residual`` holds every
    conjunct that could not (joins of columns, ORs, functions, ...), kept
    by canonical key for equality checking.
    """

    ranges: dict[str, ColumnRange] = field(default_factory=dict)
    residual: list[Expr] = field(default_factory=list)

    def residual_keys(self) -> frozenset:
        return frozenset(c.key() for c in self.residual)


def profile_predicate(pred: Expr) -> PredicateProfile:
    """Analyze a predicate into a :class:`PredicateProfile`."""
    profile = PredicateProfile()
    for conjunct in split_conjuncts(pred):
        parsed = _parse_range_conjunct(conjunct)
        if parsed is None:
            profile.residual.append(conjunct)
            continue
        column, kind, payload = parsed
        current = profile.ranges.get(column, ColumnRange(column))
        if kind == "low":
            bound, inclusive = payload
            current = current.tighten_low(bound, inclusive)
        elif kind == "high":
            bound, inclusive = payload
            current = current.tighten_high(bound, inclusive)
        else:  # kind == "values"
            current = current.restrict_values(payload)
        profile.ranges[column] = current
    return profile


def _parse_range_conjunct(expr: Expr):
    """Recognize ``col <op> literal`` / ``literal <op> col`` / ``col IN``.

    Returns ``(column, kind, payload)`` or ``None`` when unrecognized.
    """
    if isinstance(expr, InList) and isinstance(expr.arg, Col) \
            and not expr.negated and expr.values:
        # NOT IN and the degenerate empty IN () are not range-shaped:
        # treating them as value restrictions would invert/annihilate
        # the profile, so they stay opaque to subsumption analysis.
        return expr.arg.name, "values", frozenset(expr.values)
    if not isinstance(expr, Cmp):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, Lit) and isinstance(right, Col):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
              "=": "=", "<>": "<>"}[op]
    if not (isinstance(left, Col) and isinstance(right, Lit)):
        return None
    value = right.value
    if op == "=":
        return left.name, "values", frozenset([value])
    if op == "<":
        return left.name, "high", (value, False)
    if op == "<=":
        return left.name, "high", (value, True)
    if op == ">":
        return left.name, "low", (value, False)
    if op == ">=":
        return left.name, "low", (value, True)
    return None  # <> is treated as residual
