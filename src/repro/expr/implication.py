"""Predicate implication: does predicate P imply predicate Q?

Used by tuple subsumption (paper Section IV-A): a cached result computed
under predicate Q can answer a request under predicate P when P => Q
(every row P keeps, Q also keeps), by re-applying P to the cached rows.

The test is *sound but incomplete*: it decomposes both predicates into
per-column literal ranges plus a residual conjunct set (see
:mod:`repro.expr.analysis`) and proves implication when

* every residual conjunct of Q appears verbatim (canonical key) in P, and
* every per-column range of Q contains the corresponding range of P.

Anything it cannot prove is reported as "no", which merely costs a reuse
opportunity — never correctness.
"""

from __future__ import annotations

from .analysis import PredicateProfile, profile_predicate
from .nodes import Expr, NameMapping


def implies(stronger: Expr, weaker: Expr,
            mapping: NameMapping | None = None) -> bool:
    """True when ``stronger`` provably implies ``weaker``.

    ``mapping`` translates the column names used by ``stronger`` into the
    namespace of ``weaker`` before comparing (query names -> graph names).
    """
    if mapping:
        stronger = stronger.rename(dict(mapping))
    if stronger.key() == weaker.key():
        return True
    return profile_implies(profile_predicate(stronger),
                           profile_predicate(weaker))


def profile_implies(stronger: PredicateProfile,
                    weaker: PredicateProfile,
                    stronger_residual_keys: frozenset | None = None,
                    weaker_residual_keys: frozenset | None = None) -> bool:
    """Implication test on pre-computed profiles.

    The optional precomputed residual key sets let hot callers (the
    subsumption index compares every new node against all its siblings)
    avoid re-canonicalizing large predicates on every pair.
    """
    # Every residual conjunct of the weaker predicate must literally occur
    # in the stronger one (plus range conjuncts of the stronger side can't
    # help prove residuals).
    stronger_residuals = stronger_residual_keys \
        if stronger_residual_keys is not None \
        else stronger.residual_keys()
    weaker_residuals = weaker_residual_keys \
        if weaker_residual_keys is not None else \
        frozenset(c.key() for c in weaker.residual)
    if not weaker_residuals <= stronger_residuals:
        return False
    # Every range of the weaker predicate must contain the stronger one's.
    for column, weak_range in weaker.ranges.items():
        strong_range = stronger.ranges.get(column)
        if strong_range is None:
            return False
        if not weak_range.contains_range(strong_range):
            return False
    return True
