"""Sessions: concurrent connections to one shared database.

The paper's throughput experiments (Section V, Figures 7–9) run many
concurrent query streams against a single recycler.  This module is the
real-threads counterpart of that setup:

* :class:`Session` — one logical connection.  Each query it issues
  carries a session-unique producer token, *blocks* when its rewrite
  matches a result some concurrent session is currently producing
  (in-flight sharing), and is logged in a per-session record list.
* :class:`SessionPool` — a fixed-size pool of worker threads, one
  session per worker, with ``submit``/``run`` for issuing SQL from the
  application thread.

Cancellation and deadlines: every query additionally carries a
:class:`~repro.engine.cancellation.CancellationToken`.
:meth:`Session.cancel` (any thread) trips it, and
``execute(deadline=...)`` / ``sql(timeout=...)`` arm it with a
monotonic deadline; the executing query then aborts *mid-execution*,
within one batch boundary, raising
:class:`~repro.errors.QueryCancelled` or
:class:`~repro.errors.QueryTimeout` — it does not run to completion.
Aborted queries leave no recycler side effects (no cache entry, no
stale in-flight registration; stalled consumers are woken).

Usage::

    db = Database()
    db.register_table("t", table)

    with db.connect() as session:          # one extra connection
        session.sql("SELECT ...")

    with db.pool(workers=4) as pool:       # four concurrent sessions
        results = pool.run(["SELECT ...", "SELECT ..."])
    print(db.summary())                    # merged recycler view

A :class:`Session` is *not* itself thread-safe: it models one
connection, so one thread uses it at a time (exactly like a DB-API
connection).  All cross-session coordination happens inside the
recycler, which is fully thread-safe.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

from .engine.cancellation import CancellationToken
from .engine.executor import QueryResult
from .errors import ReproError
from .plan.logical import PlanNode
from .recycler.recycler import QueryRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .db import Database


class SessionError(ReproError):
    """A session was used after close, or from the wrong thread."""


class Session:
    """One logical connection to a :class:`~repro.db.Database`.

    Open with :meth:`Database.connect`; close with :meth:`close` or use
    as a context manager.  A session is *not* thread-safe (one thread
    at a time, like a DB-API connection), with one deliberate
    exception: :meth:`cancel` may be called from any thread to abort
    the query the session is currently executing.
    """

    def __init__(self, db: "Database", session_id: int,
                 executor: object | None = None) -> None:
        self._db = db
        self.session_id = session_id
        #: optional :class:`~repro.engine.shard.pool.ShardRuntime` —
        #: cold queries on this session execute in a worker process
        #: (``Database.pool(mode="processes")`` wires one in).
        self._executor = executor
        #: per-session query log (the recycler keeps the merged log).
        self.records: list[QueryRecord] = []
        self._seq = 0
        self._closed = False
        #: (producer token, cancellation token) of the query currently
        #: executing on this session, if any — one attribute so
        #: :meth:`cancel`, called from other threads, always sees a
        #: matched pair.
        self._active: tuple[tuple, CancellationToken] | None = None
        #: set by :meth:`cancel_all`: every query started afterwards is
        #: born cancelled (closes the pool-shutdown race where a worker
        #: dequeued a query but has not yet registered it).
        self._cancel_all = False

    # ------------------------------------------------------------------
    def sql(self, text: str, label: str = "",
            timeout: float | None = None,
            deadline: float | None = None) -> QueryResult:
        """Parse, plan, and execute SQL text through the shared recycler.

        One catalog snapshot is pinned up front and covers binding,
        validation, rewriting, and execution, so a concurrent DDL on
        another session never changes what this statement reads.

        ``timeout`` (seconds from now) and ``deadline`` (absolute
        :func:`time.monotonic` timestamp) bound the execution; past
        either, the query aborts with
        :class:`~repro.errors.QueryTimeout`.  Given both, the earlier
        wins.
        """
        return self.run(text, label=label, timeout=timeout,
                        deadline=deadline)

    def execute(self, plan: PlanNode, label: str = "",
                timeout: float | None = None,
                deadline: float | None = None,
                snapshot=None) -> QueryResult:
        """Execute a prebuilt logical plan.

        Blocks while a concurrent session is producing a result this
        query would reuse, then reuses the materialized entry.  The
        wait counts against ``timeout``/``deadline`` (semantics as in
        :meth:`sql`), so a deadline fires even while stalled on another
        session's in-flight result.

        ``snapshot`` (a :class:`~repro.columnar.catalog.CatalogSnapshot`)
        pins the catalog view the query resolves against and asserts
        the plan was already validated under it.  Without it, a snapshot
        is pinned and the plan re-validated — a prebuilt plan whose
        table was dropped or re-typed by concurrent DDL fails with a
        clear error instead of deep inside operator construction.

        Raises :class:`~repro.errors.QueryCancelled` when
        :meth:`cancel` interrupts the query and
        :class:`~repro.errors.QueryTimeout` past the deadline; aborted
        queries do not append to :attr:`records`.
        """
        return self.run(plan, label=label, timeout=timeout,
                        deadline=deadline, snapshot=snapshot)

    def run(self, query: str | PlanNode, label: str = "",
            timeout: float | None = None,
            deadline: float | None = None,
            snapshot=None) -> QueryResult:
        """The session's one entry into the shared
        :class:`~repro.exec_service.ExecutionService` pipeline
        (:meth:`sql` and :meth:`execute` both land here).

        The cancellation token is built *before* the service call and
        published in :attr:`_active` so :meth:`cancel`, from any thread,
        always finds a matched (producer token, cancel token) pair.
        """
        if self._closed:
            raise SessionError(
                f"session {self.session_id} is closed")
        self._seq += 1
        token = ("session", self.session_id, self._seq)
        cancel_token = CancellationToken(deadline=deadline,
                                         timeout=timeout)
        # The service pins the snapshot, plans SQL text, blocks on
        # in-flight producers, abandons the prepared query if execution
        # aborts or fails (so stalled sessions never wait on a dead
        # producer), and attaches the QueryRecord.
        # Publish before reading the flag: whichever order a concurrent
        # cancel_all() interleaves, either it sees this query in
        # _active and cancels it, or this read sees its flag.
        self._active = (token, cancel_token)
        if self._cancel_all:
            cancel_token.cancel()
        try:
            result = self._db.service.execute(
                query, frontend="session", label=label,
                producer_token=token, block_on_inflight=True,
                cancel_token=cancel_token, snapshot=snapshot,
                remote=self._executor)
        finally:
            self._active = None
        self.records.append(result.record)
        return result

    def cancel(self) -> bool:
        """Abort the query currently executing on this session, from
        any thread (used by pool shutdown mid-query).

        Trips the query's cancellation token — the executing thread
        stops within one batch boundary, raising
        :class:`~repro.errors.QueryCancelled` — and retires its
        producer token in the recycler: the query is woken if it is
        blocked on an in-flight producer, its own in-flight
        registrations are dropped (waking consumers stalled on *it*),
        and any store registration it would plant afterwards is
        refused, so a cancelled query can never leave a stale entry or
        publish a partial result.  Returns True when there was a query
        to cancel."""
        active = self._active
        if active is None:
            return False
        token, cancel_token = active
        cancel_token.cancel()
        self._db.recycler.cancel(token)
        return True

    def cancel_all(self) -> bool:
        """:meth:`cancel` plus a standing order: every query this
        session *starts afterwards* is born cancelled and aborts at its
        first batch check.  Pool shutdown uses this so a query a worker
        dequeued but has not yet registered cannot slip past the cancel
        sweep and run to completion.  Returns :meth:`cancel`'s result."""
        self._cancel_all = True
        return self.cancel()

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Counters for the queries this session issued."""
        return {
            "session_id": self.session_id,
            "queries": len(self.records),
            "total_cost": sum(r.total_cost for r in self.records),
            "num_reused": sum(r.num_reused for r in self.records),
            "num_materialized": sum(r.num_materialized
                                    for r in self.records),
            "stall_seconds": sum(r.stall_seconds for r in self.records),
            "matching_seconds": sum(r.matching_seconds
                                    for r in self.records),
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self.records)} queries"
        return f"Session#{self.session_id}({state})"


class SessionPool:
    """N worker threads, each owning one session on a shared database.

    Work is submitted from the application thread; every worker thread
    lazily opens its own :class:`Session` (sessions are single-threaded
    by contract), so up to ``workers`` queries run truly concurrently
    against the shared recycler.
    """

    def __init__(self, db: "Database", workers: int,
                 shard_runtime: object | None = None) -> None:
        if workers < 1:
            raise SessionError("pool needs at least one worker")
        self._db = db
        self.workers = workers
        #: process mode (``Database.pool(mode="processes")``): sessions
        #: opened by the worker threads execute cold plans on this
        #: shard runtime; closing the pool closes the runtime too.
        self._shard_runtime = shard_runtime
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-session")
        self._local = threading.local()
        self._sessions: list[Session] = []
        self._sessions_lock = threading.Lock()
        self._closed = False
        #: close(cancel_pending=True) in progress: sessions opened
        #: after its cancel sweep must still be born cancelled.
        self._cancelling = False

    # ------------------------------------------------------------------
    def _session(self) -> Session:
        session = getattr(self._local, "session", None)
        if session is None:
            session = self._db.connect(executor=self._shard_runtime)
            self._local.session = session
            with self._sessions_lock:
                self._sessions.append(session)
            # After publishing: either this read sees the shutdown flag,
            # or close()'s sweep (which sets the flag first) sees this
            # session in the list — a late-created session cannot dodge
            # both.
            if self._cancelling:
                session.cancel_all()
        return session

    def submit(self, query: str | PlanNode, label: str = "",
               timeout: float | None = None) -> "Future[QueryResult]":
        """Queue one query; returns a future for its result.

        ``timeout`` (seconds, measured from when the query *starts
        executing*, not from submission) bounds the execution; the
        future then raises :class:`~repro.errors.QueryTimeout`.
        """
        if self._closed:
            raise SessionError("pool is closed")
        return self._executor.submit(
            lambda: self._session().run(query, label=label,
                                        timeout=timeout))

    def run(self, queries: Iterable[str | PlanNode],
            labels: Sequence[str] | None = None,
            timeout: float | None = None) -> list[QueryResult]:
        """Execute ``queries`` across the pool; results in input order.

        ``timeout`` applies per query (see :meth:`submit`); a query
        that exceeds it makes this call raise
        :class:`~repro.errors.QueryTimeout`.
        """
        futures = [
            self.submit(query,
                        label=labels[i] if labels is not None else "",
                        timeout=timeout)
            for i, query in enumerate(queries)
        ]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def sessions(self) -> list[Session]:
        with self._sessions_lock:
            return list(self._sessions)

    def summary(self) -> dict[str, object]:
        """Merged per-session counters plus the shared recycler view."""
        sessions = self.sessions()
        merged = {
            "sessions": len(sessions),
            "queries": sum(len(s.records) for s in sessions),
            "total_cost": sum(r.total_cost
                              for s in sessions for r in s.records),
            "num_reused": sum(r.num_reused
                              for s in sessions for r in s.records),
            "num_materialized": sum(r.num_materialized
                                    for s in sessions for r in s.records),
            "stall_seconds": sum(r.stall_seconds
                                 for s in sessions for r in s.records),
            "per_session": [s.summary() for s in sessions],
        }
        merged["recycler"] = self._db.summary()
        return merged

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut the pool down.

        With ``cancel_pending`` queued (not yet started) queries are
        dropped (their futures raise
        :class:`concurrent.futures.CancelledError`) and every *running*
        query is aborted mid-execution: it stops within one batch
        boundary and its future raises
        :class:`~repro.errors.QueryCancelled`.  A query blocked on an
        in-flight producer wakes immediately, and no aborted query can
        leave a store registration or cache entry behind.  With
        ``wait`` the shutdown joins the workers, which is quick now
        that running queries actually stop."""
        if self._closed:
            return
        self._closed = True
        if cancel_pending:
            # Drop the queue first, then cancel whatever already runs —
            # cancel_all also covers queries dequeued but not yet
            # registered, so nothing can slip past this one sweep.
            self._cancelling = True
            self._executor.shutdown(wait=False, cancel_futures=True)
            for session in self.sessions():
                session.cancel_all()
            if wait:
                self._executor.shutdown(wait=True)
        else:
            self._executor.shutdown(wait=wait)
        for session in self.sessions():
            session.close()
        if self._shard_runtime is not None:
            self._shard_runtime.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionPool(workers={self.workers})"
