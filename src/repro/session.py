"""Sessions: concurrent connections to one shared database.

The paper's throughput experiments (Section V, Figures 7–9) run many
concurrent query streams against a single recycler.  This module is the
real-threads counterpart of that setup:

* :class:`Session` — one logical connection.  Each query it issues
  carries a session-unique producer token, *blocks* when its rewrite
  matches a result some concurrent session is currently producing
  (in-flight sharing), and is logged in a per-session record list.
* :class:`SessionPool` — a fixed-size pool of worker threads, one
  session per worker, with ``submit``/``run`` for issuing SQL from the
  application thread.

Usage::

    db = Database()
    db.register_table("t", table)

    with db.connect() as session:          # one extra connection
        session.sql("SELECT ...")

    with db.pool(workers=4) as pool:       # four concurrent sessions
        results = pool.run(["SELECT ...", "SELECT ..."])
    print(db.summary())                    # merged recycler view

A :class:`Session` is *not* itself thread-safe: it models one
connection, so one thread uses it at a time (exactly like a DB-API
connection).  All cross-session coordination happens inside the
recycler, which is fully thread-safe.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

from .engine.executor import QueryResult
from .errors import ReproError
from .plan.logical import PlanNode
from .recycler.recycler import QueryRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .db import Database


class SessionError(ReproError):
    """A session was used after close, or from the wrong thread."""


class Session:
    """One logical connection to a :class:`~repro.db.Database`."""

    def __init__(self, db: "Database", session_id: int) -> None:
        self._db = db
        self.session_id = session_id
        #: per-session query log (the recycler keeps the merged log).
        self.records: list[QueryRecord] = []
        self._seq = 0
        self._closed = False
        #: token of the query currently executing on this session, if
        #: any — read by :meth:`cancel` from other threads.
        self._active_token: tuple | None = None

    # ------------------------------------------------------------------
    def sql(self, text: str, label: str = "") -> QueryResult:
        """Parse, plan, and execute SQL text through the shared recycler."""
        return self.execute(self._db.plan(text), label=label)

    def execute(self, plan: PlanNode, label: str = "") -> QueryResult:
        """Execute a prebuilt logical plan.

        Blocks while a concurrent session is producing a result this
        query would reuse, then reuses the materialized entry.
        """
        if self._closed:
            raise SessionError(
                f"session {self.session_id} is closed")
        self._seq += 1
        token = ("session", self.session_id, self._seq)
        # The recycler blocks on in-flight producers, abandons the
        # prepared query if execution fails (so stalled sessions never
        # wait on a dead producer), and attaches the QueryRecord.
        self._active_token = token
        try:
            result = self._db.recycler.execute(
                plan, label=label, producer_token=token,
                block_on_inflight=True)
        finally:
            self._active_token = None
        self.records.append(result.record)
        return result

    def cancel(self) -> bool:
        """Abandon the query currently executing on this session, from
        any thread (used by pool shutdown mid-query).

        Wakes the query if it is blocked on an in-flight producer and
        retires its token so it cannot leave store registrations behind
        — even when that producer already finalized and the query is
        past waiting.  The query itself still runs to completion (plain
        recomputation, no recycler side effects).  Returns True when
        there was a query to cancel."""
        token = self._active_token
        if token is None:
            return False
        self._db.recycler.cancel(token)
        return True

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Counters for the queries this session issued."""
        return {
            "session_id": self.session_id,
            "queries": len(self.records),
            "total_cost": sum(r.total_cost for r in self.records),
            "num_reused": sum(r.num_reused for r in self.records),
            "num_materialized": sum(r.num_materialized
                                    for r in self.records),
            "stall_seconds": sum(r.stall_seconds for r in self.records),
            "matching_seconds": sum(r.matching_seconds
                                    for r in self.records),
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self.records)} queries"
        return f"Session#{self.session_id}({state})"


class SessionPool:
    """N worker threads, each owning one session on a shared database.

    Work is submitted from the application thread; every worker thread
    lazily opens its own :class:`Session` (sessions are single-threaded
    by contract), so up to ``workers`` queries run truly concurrently
    against the shared recycler.
    """

    def __init__(self, db: "Database", workers: int) -> None:
        if workers < 1:
            raise SessionError("pool needs at least one worker")
        self._db = db
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-session")
        self._local = threading.local()
        self._sessions: list[Session] = []
        self._sessions_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _session(self) -> Session:
        session = getattr(self._local, "session", None)
        if session is None:
            session = self._db.connect()
            self._local.session = session
            with self._sessions_lock:
                self._sessions.append(session)
        return session

    def submit(self, query: str | PlanNode,
               label: str = "") -> "Future[QueryResult]":
        """Queue one query; returns a future for its result."""
        if self._closed:
            raise SessionError("pool is closed")
        if isinstance(query, PlanNode):
            return self._executor.submit(
                lambda: self._session().execute(query, label=label))
        return self._executor.submit(
            lambda: self._session().sql(query, label=label))

    def run(self, queries: Iterable[str | PlanNode],
            labels: Sequence[str] | None = None) -> list[QueryResult]:
        """Execute ``queries`` across the pool; results in input order."""
        futures = [
            self.submit(query,
                        label=labels[i] if labels is not None else "")
            for i, query in enumerate(queries)
        ]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def sessions(self) -> list[Session]:
        with self._sessions_lock:
            return list(self._sessions)

    def summary(self) -> dict[str, object]:
        """Merged per-session counters plus the shared recycler view."""
        sessions = self.sessions()
        merged = {
            "sessions": len(sessions),
            "queries": sum(len(s.records) for s in sessions),
            "total_cost": sum(r.total_cost
                              for s in sessions for r in s.records),
            "num_reused": sum(r.num_reused
                              for s in sessions for r in s.records),
            "num_materialized": sum(r.num_materialized
                                    for s in sessions for r in s.records),
            "stall_seconds": sum(r.stall_seconds
                                 for s in sessions for r in s.records),
            "per_session": [s.summary() for s in sessions],
        }
        merged["recycler"] = self._db.summary()
        return merged

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut the pool down.

        With ``cancel_pending`` queued (not yet started) queries are
        dropped and every in-flight query is cancelled mid-query: a
        query blocked on an in-flight producer wakes immediately and
        none of them can leave store registrations behind.  In-flight
        queries still run to completion (recomputing instead of
        sharing), so with ``wait`` their records land in the session
        logs and stall-second accounting stays consistent."""
        if self._closed:
            return
        self._closed = True
        if cancel_pending:
            # Drop the queue first, then cancel whatever already runs.
            self._executor.shutdown(wait=False, cancel_futures=True)
            for session in self.sessions():
                session.cancel()
            if wait:
                self._executor.shutdown(wait=True)
        else:
            self._executor.shutdown(wait=wait)
        for session in self.sessions():
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionPool(workers={self.workers})"
