"""PEP 249 (DB-API 2.0) interface over the execution service.

The standard Python database adapter shape — ``connect()`` /
:class:`Connection` / :class:`Cursor` — built **only** on the
transport-agnostic :class:`~repro.exec_service.ExecutionService`; no
recycler internals leak through.  Connections opened against one shared
:class:`~repro.db.Database` share its recycler: a result one
connection's query materializes is reused by every other connection
(and by sessions, the server, and the facade).

Usage::

    import repro.dbapi as dbapi

    conn = dbapi.connect()                    # private in-memory database
    conn.database.register_table("t", table)
    cur = conn.cursor()
    cur.execute("SELECT g, sum(v) AS s FROM t WHERE v > ? GROUP BY g",
                (10,))
    print(cur.description)                    # name/type 7-tuples
    rows = cur.fetchall()

    shared = dbapi.connect(database=db)       # second frontend onto db

Parameters use ``qmark`` style (``?`` placeholders) substituted
client-side as SQL literals — supported parameter types are ``int``,
``float``, ``bool``, ``str`` (quotes escaped by doubling), and
``datetime.date`` (rendered as a ``DATE '...'`` literal).  The engine
has no NULL literal, so ``None`` parameters raise
:class:`ProgrammingError`.

Threading: ``threadsafety == 2`` — the module and connections may be
shared across threads (every query funnels into the fully thread-safe
service); a single :class:`Cursor` is single-threaded, like the
:class:`~repro.session.Session` it mirrors.

Exceptions follow the PEP 249 hierarchy (:class:`Error`,
:class:`InterfaceError`, :class:`DatabaseError`, ...), each carrying the
originating :class:`~repro.errors.ReproError` as ``__cause__``.
"""

from __future__ import annotations

import datetime
import itertools
import threading
from typing import Iterable, Sequence

from .columnar.types import DataType
from .db import Database
from .engine.cancellation import CancellationToken
from .errors import (CatalogError, ExpressionError, PlanError, QueryAborted,
                     RecyclerError, ReproError, SchemaError, SqlError,
                     TypeError_)

apilevel = "2.0"
#: threads may share the module and connections (the service layer is
#: fully thread-safe); cursors are single-threaded.
threadsafety = 2
paramstyle = "qmark"


# ----------------------------------------------------------------------
# PEP 249 exception hierarchy
# ----------------------------------------------------------------------
class Warning(Exception):  # noqa: A001 - name fixed by PEP 249
    """Important warnings (PEP 249)."""


class Error(Exception):
    """Base class of all DB-API errors raised by this module."""


class InterfaceError(Error):
    """Misuse of the interface itself (closed cursor/connection, ...)."""


class DatabaseError(Error):
    """Base class for errors reported by the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad value/type)."""


class OperationalError(DatabaseError):
    """Errors of the database's operation (timeouts, cancellation)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (unused; required by PEP 249)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Errors in the submitted SQL or its parameters."""


class NotSupportedError(DatabaseError):
    """An API feature this engine does not provide (``rollback``)."""


def _map_error(exc: ReproError) -> Error:
    """The one ReproError→PEP 249 translation, used by every cursor."""
    if isinstance(exc, (SqlError, CatalogError, PlanError, SchemaError,
                        ExpressionError)):
        wrapped: Error = ProgrammingError(str(exc))
    elif isinstance(exc, QueryAborted):
        wrapped = OperationalError(str(exc))
    elif isinstance(exc, TypeError_):
        wrapped = DataError(str(exc))
    elif isinstance(exc, RecyclerError):
        wrapped = InternalError(str(exc))
    else:
        wrapped = DatabaseError(str(exc))
    wrapped.__cause__ = exc
    return wrapped


# ----------------------------------------------------------------------
# description type objects
# ----------------------------------------------------------------------
class DBAPITypeObject:
    """PEP 249 type object: compares equal to every member type code.

    ``description[i][1]`` is the column's
    :class:`~repro.columnar.types.DataType`; these singletons let
    portable callers test ``type_code == NUMBER`` etc.
    """

    def __init__(self, *names: str) -> None:
        self._names = frozenset(names)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DataType):
            return other.name in self._names
        if isinstance(other, str):
            return other in self._names
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DBAPITypeObject({', '.join(sorted(self._names))})"


NUMBER = DBAPITypeObject("INT64", "FLOAT64", "BOOL")
STRING = DBAPITypeObject("STRING")
DATETIME = DBAPITypeObject("DATE")
BINARY = DBAPITypeObject()  # no binary columns in this engine
ROWID = DBAPITypeObject()


def Date(year: int, month: int, day: int) -> datetime.date:
    """PEP 249 date constructor (DATE columns are day counts)."""
    return datetime.date(year, month, day)


def DateFromTicks(ticks: float) -> datetime.date:
    return datetime.date.fromtimestamp(ticks)


# ----------------------------------------------------------------------
# parameter substitution
# ----------------------------------------------------------------------
def _render_literal(value: object) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if value is None:
        raise ProgrammingError(
            "None parameters are not supported (no NULL literal)")
    raise ProgrammingError(
        f"unsupported parameter type: {type(value).__name__}")


def _substitute(operation: str, parameters: Sequence) -> str:
    """Replace ``?`` placeholders (outside string literals) with
    rendered literals — client-side qmark binding."""
    out: list[str] = []
    params = iter(parameters)
    consumed = 0
    in_string = False
    i = 0
    while i < len(operation):
        ch = operation[i]
        if in_string:
            out.append(ch)
            if ch == "'":
                # '' inside a string is an escaped quote, not the end
                if i + 1 < len(operation) and operation[i + 1] == "'":
                    out.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            out.append(ch)
        elif ch == "?":
            try:
                value = next(params)
            except StopIteration:
                raise ProgrammingError(
                    f"operation has more placeholders than the"
                    f" {len(parameters)} parameter(s) given") from None
            out.append(_render_literal(value))
            consumed += 1
        else:
            out.append(ch)
        i += 1
    if consumed != len(parameters):
        raise ProgrammingError(
            f"operation has {consumed} placeholder(s) but"
            f" {len(parameters)} parameter(s) were given")
    return "".join(out)


# ----------------------------------------------------------------------
# connections & cursors
# ----------------------------------------------------------------------
_connection_ids = itertools.count(1)


def connect(database: Database | None = None, *,
            timeout: float | None = None, **db_kwargs) -> "Connection":
    """Open a DB-API connection.

    ``database`` attaches to an existing :class:`~repro.db.Database`
    (many connections may share one — they then share its recycler
    cache); without it a private in-memory database is created (extra
    keyword arguments go to its constructor) and closed with the
    connection.

    ``timeout`` is a default per-query deadline in seconds applied to
    every ``execute`` on this connection (override per call).
    """
    owns = database is None
    if database is None:
        database = Database(**db_kwargs)
    elif db_kwargs:
        raise InterfaceError(
            "database= and Database constructor arguments are mutually"
            " exclusive")
    return Connection(database, owns_database=owns,
                      default_timeout=timeout)


class Connection:
    """One PEP 249 connection onto a shared database."""

    #: PEP 249 optional extension: exception classes as attributes.
    Warning = Warning
    Error = Error
    InterfaceError = InterfaceError
    DatabaseError = DatabaseError
    DataError = DataError
    OperationalError = OperationalError
    IntegrityError = IntegrityError
    InternalError = InternalError
    ProgrammingError = ProgrammingError
    NotSupportedError = NotSupportedError

    def __init__(self, database: Database, owns_database: bool = False,
                 default_timeout: float | None = None) -> None:
        #: the underlying :class:`~repro.db.Database` — schema
        #: management (``register_table`` etc.) stays on it.
        self.database = database
        self._service = database.service
        self._owns_database = owns_database
        self.default_timeout = default_timeout
        self.connection_id = next(_connection_ids)
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._closed = False

    # -- internal ------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _next_token(self) -> tuple:
        """Producer token for one query — unique per connection and
        statement, so in-flight sharing and cancel bookkeeping treat
        DB-API queries exactly like session queries."""
        with self._seq_lock:
            self._seq += 1
            return ("dbapi", self.connection_id, self._seq)

    # -- PEP 249 -------------------------------------------------------
    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        """No-op: queries are read-only over in-memory tables; DDL is
        applied immediately (auto-commit semantics)."""
        self._check_open()

    def rollback(self) -> None:
        raise NotSupportedError("transactions are not supported")

    def close(self) -> None:
        """Close the connection (idempotent).  A private database
        created by :func:`connect` is closed too; a shared one is left
        running for its other frontends."""
        if self._closed:
            return
        self._closed = True
        if self._owns_database:
            self.database.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"Connection#{self.connection_id}({state})"


class Cursor:
    """A PEP 249 cursor: execute + fetch over one connection."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._row_iter = None  # lazy row source of the current result
        self._description: list[tuple] | None = None
        self._rowcount = -1
        #: observability: the largest row batch this cursor ever built
        #: at once.  Fetching streams from the columnar result
        #: (:meth:`~repro.columnar.table.Table.iter_rows`), so this
        #: stays at the ``fetchmany`` size however large the result —
        #: only ``fetchall`` materializes everything.
        self.max_buffered_rows = 0
        #: per-cursor statistics, aggregated over every ``execute`` on
        #: this cursor from the recycler's
        #: :class:`~repro.recycler.recycler.QueryRecord` entries.
        self.statistics: dict[str, float] = {
            "queries": 0, "num_reused": 0, "num_materialized": 0,
            "num_matched": 0, "num_inserted": 0, "total_cost": 0.0,
            "stall_seconds": 0.0,
        }

    # -- internal ------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _run(self, sql: str, timeout: float | None) -> None:
        if timeout is None:
            timeout = self.connection.default_timeout
        token = CancellationToken.from_limits(timeout=timeout)
        try:
            result = self.connection._service.execute(
                sql, frontend="dbapi", label=sql,
                producer_token=self.connection._next_token(),
                block_on_inflight=True, cancel_token=token)
        except ReproError as exc:
            raise _map_error(exc) from exc
        table = result.table
        # Fetches pull lazily from the columnar result: peak buffered
        # rows is bounded by the fetch size, not the result size.
        self._row_iter = table.iter_rows()
        self._rowcount = table.num_rows
        self._description = [
            (name, dtype, None, None, None, None, None)
            for name, dtype in zip(table.schema.names,
                                   table.schema.types)]
        record = result.record
        if record is not None:
            stats = self.statistics
            stats["queries"] += 1
            stats["num_reused"] += record.num_reused
            stats["num_materialized"] += record.num_materialized
            stats["num_matched"] += record.num_matched
            stats["num_inserted"] += record.num_inserted
            stats["total_cost"] += record.total_cost
            stats["stall_seconds"] += record.stall_seconds

    # -- PEP 249: execution --------------------------------------------
    def execute(self, operation: str, parameters: Sequence | None = None,
                timeout: float | None = None) -> "Cursor":
        """Execute one statement (``?`` placeholders bound from
        ``parameters``).  ``timeout`` (an extension) bounds this
        statement; the connection's ``default_timeout`` applies
        otherwise.  Returns the cursor (PEP 249 extension), so
        ``for row in cur.execute(...)`` reads naturally."""
        self._check_open()
        if parameters:
            operation = _substitute(operation, parameters)
        elif parameters is not None:
            _substitute(operation, ())  # still verify placeholder count
        self._run(operation, timeout)
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Iterable[Sequence]) -> "Cursor":
        """Run ``operation`` once per parameter set.  ``rowcount``
        totals the rows of all executions; the fetchable result is the
        last execution's."""
        self._check_open()
        total = 0
        ran = False
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
            total += self._rowcount
            ran = True
        if ran:
            self._rowcount = total
        return self

    # -- PEP 249: results ----------------------------------------------
    @property
    def description(self) -> list[tuple] | None:
        return self._description

    @property
    def rowcount(self) -> int:
        return self._rowcount

    def _result_iter(self):
        self._check_open()
        if self._row_iter is None:
            raise ProgrammingError("no query has been executed")
        return self._row_iter

    def fetchone(self) -> tuple | None:
        row = next(self._result_iter(), None)
        if row is not None:
            self.max_buffered_rows = max(self.max_buffered_rows, 1)
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._result_iter()
        if size is None:
            size = self.arraysize
        batch = list(itertools.islice(rows, max(0, size)))
        self.max_buffered_rows = max(self.max_buffered_rows, len(batch))
        return batch

    def fetchall(self) -> list[tuple]:
        batch = list(self._result_iter())
        self.max_buffered_rows = max(self.max_buffered_rows, len(batch))
        return batch

    def __iter__(self) -> "Cursor":
        self._result_iter()
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP 249: misc -------------------------------------------------
    def setinputsizes(self, sizes) -> None:  # noqa: ARG002
        """No-op (PEP 249 requires the method to exist)."""

    def setoutputsize(self, size, column=None) -> None:  # noqa: ARG002
        """No-op (PEP 249 requires the method to exist)."""

    def close(self) -> None:
        self._closed = True
        self._row_iter = None
        self._description = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
