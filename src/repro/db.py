"""The public database facade.

Ties the catalog, SQL front end, pipelined engine and recycler together::

    from repro import Database, RecyclerConfig

    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", table)
    result = db.sql("SELECT g, sum(v) AS s FROM t GROUP BY g")
    print(result.table.to_rows())
    print(db.summary())
"""

from __future__ import annotations

from .columnar.catalog import BinningSpec, Catalog, TableFunction
from .columnar.table import Schema, Table
from .engine.cost import DEFAULT_COST_MODEL, CostModel
from .engine.executor import QueryResult
from .plan.logical import PlanNode, render_plan
from .plan.validate import validate_plan
from .recycler.config import RecyclerConfig
from .recycler.recycler import Recycler
from .sql import sql_to_plan


class Database:
    """An in-memory analytical database with a recycling query engine."""

    def __init__(self, config: RecyclerConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 vector_size: int = 1024) -> None:
        self.catalog = Catalog()
        self.config = config or RecyclerConfig()
        self.recycler = Recycler(self.catalog, self.config,
                                 cost_model=cost_model,
                                 vector_size=vector_size)

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table; replacing invalidates every
        cached result that depends on it."""
        if self.catalog.has_table(name):
            self.recycler.invalidate_table(name)
        self.catalog.register_table(name, table)

    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        self.catalog.register_function(name, function, schema,
                                       invocation_cost)

    def register_binning(self, table: str, spec: BinningSpec) -> None:
        """Declare how a column may be binned (enables the proactive
        cube-caching-with-binning strategy for that column)."""
        self.catalog.register_binning(table, spec)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan(self, sql: str) -> PlanNode:
        """Parse + bind + validate SQL into an optimized logical plan."""
        plan = sql_to_plan(sql, self.catalog)
        validate_plan(plan, self.catalog)
        return plan

    def sql(self, text: str, label: str = "") -> QueryResult:
        """Execute SQL text through the recycler."""
        return self.recycler.execute(self.plan(text), label=label)

    def execute(self, plan: PlanNode, label: str = "") -> QueryResult:
        """Execute a prebuilt logical plan through the recycler."""
        validate_plan(plan, self.catalog)
        return self.recycler.execute(plan, label=label)

    def explain(self, sql: str) -> str:
        """The optimized logical plan as a printable tree."""
        return render_plan(self.plan(sql))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush_cache(self) -> int:
        return self.recycler.flush_cache()

    def invalidate_table(self, name: str) -> int:
        return self.recycler.invalidate_table(name)

    def summary(self) -> dict:
        return self.recycler.summary()
