"""The public database facade.

Ties the catalog, SQL front end, pipelined engine and recycler together::

    from repro import Database, RecyclerConfig

    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", table)
    result = db.sql("SELECT g, sum(v) AS s FROM t GROUP BY g")
    print(result.table.to_rows())
    print(db.summary())

Concurrency: ``db.sql`` may be called from any number of OS threads —
the recycler coordinates them internally.  For per-connection query logs
and in-flight result sharing (a query blocking on, then reusing, a
result a concurrent query is materializing) open explicit sessions::

    with db.pool(workers=4) as pool:
        results = pool.run(queries)       # four truly concurrent sessions

Queries are cooperatively cancellable: ``db.sql(..., timeout=s)`` arms
a per-query deadline, sessions add ``execute(..., deadline=)`` and a
cross-thread ``Session.cancel()``, and
``SessionPool.close(cancel_pending=True)`` aborts running queries
mid-execution — see ``docs/ARCHITECTURE.md`` for the cancellation flow.

Schema changes are **online** and snapshot-isolated: every query pins an
immutable catalog snapshot at prepare time and resolves tables against
it end to end, so ``register_table`` / ``drop_table`` / ``append_rows``
may run while queries are in flight — a running query keeps reading the
table incarnation it started with (never a mix of old and new rows),
cached dependents are invalidated, in-flight producers of now-stale
results are aborted in the registry (waking stalled consumers), and
version-tagged cache admission rejects any result computed from a
superseded table, exactly the paper's committed-update eviction made
safe under concurrency.  See ``docs/ARCHITECTURE.md`` ("Catalog
versioning and online DDL").
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from .columnar.catalog import (BinningSpec, Catalog, CatalogSnapshot,
                               TableFunction)
from .columnar.table import Schema, Table
from .engine.cost import DEFAULT_COST_MODEL, CostModel
from .engine.executor import QueryResult
from .plan.logical import PlanNode, render_plan
from .recycler.config import RecyclerConfig
from .recycler.maintenance import ActivityTracker, MaintenanceManager
from .recycler.recycler import Recycler
from .session import Session, SessionPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine.shard import ShardRuntime


class Database:
    """An in-memory analytical database with a recycling query engine."""

    def __init__(self, config: RecyclerConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 vector_size: int = 1024,
                 catalog: Catalog | None = None) -> None:
        #: ``catalog`` lets a prebuilt catalog (e.g. a generated workload
        #: substrate) be served directly.
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config or RecyclerConfig()
        self.recycler = Recycler(self.catalog, self.config,
                                 cost_model=cost_model,
                                 vector_size=vector_size)
        #: EWMA of inter-query gaps — the cost-aware maintenance
        #: scheduler's traffic signal, fed by the execution service on
        #: every query, whichever frontend it arrives through.
        self.activity = ActivityTracker(
            alpha=self.config.activity_ewma_alpha)
        #: the one canonical execution pipeline
        #: (:class:`~repro.exec_service.ExecutionService`) — shared by
        #: this facade, sessions, the DB-API, and the server, so every
        #: frontend's queries meet in one recycler *and* one activity /
        #: per-frontend statistics stream.
        self.service = self.recycler.service
        self.service.activity = self.activity
        #: background GC/truncate/refresh driver; its thread only starts
        #: when ``config.maintenance_interval_seconds`` is set, but
        #: ``maintain()`` applies the triggers on demand regardless.
        self.maintenance = MaintenanceManager(self.recycler,
                                              activity=self.activity)
        self.maintenance.start()
        self._session_counter = 0
        self._session_lock = threading.Lock()
        #: every shard runtime created via :meth:`shard_runtime` /
        #: ``pool(mode="processes")`` — closed (workers stopped, shared
        #: memory unlinked) by :meth:`close`.
        self._shard_runtimes: list = []
        self._closed = False

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table — safe while queries run.

        Ordering matters and is the fix for the classic stale-publish
        race: the catalog **swaps the table and bumps its version
        first** (atomically, under the catalog write lock), *then* the
        recycler sweep evicts cached dependents and aborts in-flight
        producers.  A producer finishing against the old table after the
        sweep is rejected by version-tagged cache admission — under the
        old invalidate-then-swap ordering it would have published a
        permanently stale entry.
        """
        self.catalog.register_table(name, table)
        # Unconditional (and idempotent): a has-table pre-check would be
        # check-then-act — two sessions concurrently registering a fresh
        # table could both skip the sweep and strand an entry cached
        # between their version bumps.
        self.recycler.invalidate_table(name)

    def drop_table(self, name: str) -> None:
        """Drop a base table — safe while queries run.

        Queries that pinned a snapshot before the drop complete against
        the dropped incarnation; new queries fail to bind.  Cached
        dependents are evicted and can never come back (versions survive
        drops, so a late producer is version-rejected)."""
        self.catalog.drop_table(name)
        self.recycler.invalidate_table(name)

    def append_rows(self, name: str, rows) -> None:
        """Append rows (a schema-compatible :class:`~repro.columnar.
        table.Table` or an iterable of row tuples) to a base table —
        the committed-update fast path of the paper's Fig. 6 model:
        one atomic swap-and-bump, then dependent eviction."""
        self.catalog.append_rows(name, rows)
        self.recycler.invalidate_table(name)

    def alter_table_add_column(self, name: str, column: str, dtype,
                               default: object | None = None) -> None:
        """Add a column (filled with ``default``, or the type's zero
        value) to a base table — safe while queries run.

        Same swap-then-invalidate ordering as :meth:`register_table`:
        the version bump lands first, so a pre-evolution producer
        finishing late is version-rejected, and the sweep evicts every
        cached dependent.  Plans bound before the DDL keep working —
        they cannot reference the new column — but their next execution
        recomputes rather than serving a pre-evolution cache entry."""
        self.catalog.alter_table_add_column(name, column, dtype, default)
        self.recycler.invalidate_table(name)

    def rename_column(self, name: str, old_name: str,
                      new_name: str) -> None:
        """Rename a column of a base table — safe while queries run.

        Bumps the table's version *and* incarnation: cached dependents
        are evicted, and plans bound against the old column name fail
        validation on their next use and must be re-bound (``db.sql``
        re-binds from text automatically; prebuilt plans are rebuilt by
        their owner)."""
        self.catalog.rename_column(name, old_name, new_name)
        self.recycler.invalidate_table(name)

    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        """Register (or replace) a table function; replacing invalidates
        every cached result derived from it (same contract as
        :meth:`register_table` — a re-registered function may compute
        something different)."""
        self.catalog.register_function(name, function, schema,
                                       invocation_cost)
        # Unconditional for the same reason as register_table.
        self.recycler.invalidate_function(name)

    def register_binning(self, table: str, spec: BinningSpec) -> None:
        """Declare how a column may be binned (enables the proactive
        cube-caching-with-binning strategy for that column)."""
        self.catalog.register_binning(table, spec)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan(self, sql: str,
             snapshot: CatalogSnapshot | None = None) -> PlanNode:
        """Parse + bind + validate SQL into an optimized logical plan.

        Binding and validation resolve against ``snapshot`` (one is
        pinned here otherwise), so a concurrent DDL cannot slide under
        the binder's feet mid-statement."""
        return self.service.plan(sql, snapshot)

    def sql(self, text: str, label: str = "",
            timeout: float | None = None) -> QueryResult:
        """Execute SQL text through the recycler — a thin caller of the
        shared :class:`~repro.exec_service.ExecutionService`.

        One catalog snapshot is pinned up front and covers binding,
        validation, rewriting, and execution — the whole statement sees
        a single point-in-time schema.

        ``timeout`` (seconds) sets a query deadline: execution is
        checked per batch and aborts with
        :class:`~repro.errors.QueryTimeout` once the deadline passes,
        leaving no cache entry or in-flight registration behind.
        """
        return self.service.execute(text, frontend="database",
                                    label=label, timeout=timeout)

    def execute(self, plan: PlanNode, label: str = "",
                timeout: float | None = None) -> QueryResult:
        """Execute a prebuilt logical plan through the recycler
        (``timeout`` as in :meth:`sql`).  The plan is re-validated
        against — and executed under — a snapshot pinned now."""
        return self.service.execute(plan, frontend="database",
                                    label=label, timeout=timeout)

    def explain(self, sql: str) -> str:
        """The optimized logical plan as a printable tree."""
        return render_plan(self.plan(sql))

    # ------------------------------------------------------------------
    # sessions & concurrency
    # ------------------------------------------------------------------
    def connect(self, executor: object | None = None) -> Session:
        """Open a new session (one logical connection).

        Sessions share this database's recycler: results one session
        materializes are reused by the others, and a session blocks on —
        then reuses — results a concurrent session is producing.

        ``executor`` optionally attaches a
        :class:`~repro.engine.shard.pool.ShardRuntime` (see
        :meth:`shard_runtime`): the session's cold queries then execute
        in worker processes; warm queries and queries the runtime
        cannot serve run in-process as usual.
        """
        with self._session_lock:
            self._session_counter += 1
            return Session(self, self._session_counter,
                           executor=executor)

    def pool(self, workers: int, mode: str = "threads") -> SessionPool:
        """A pool of ``workers`` concurrent sessions.

        ``mode="threads"`` (default) runs every query in-process on the
        pool's worker threads — reuse-heavy workloads spend most time
        in numpy kernels that release the GIL, but pure-Python operator
        overhead still serializes on the GIL.

        ``mode="processes"`` additionally spins up ``workers`` shard
        worker processes sharing this database's registered tables
        through shared memory; each session's *cold* queries execute on
        a worker process (results return pickle-free through a
        shared-memory ring) while the recycler — matching, reuse, cache
        admission — stays in this process.  Closing the pool shuts the
        worker processes down and unlinks every shared-memory segment.
        See ``docs/ARCHITECTURE.md`` ("Execution modes").
        """
        if mode == "threads":
            return SessionPool(self, workers)
        if mode == "processes":
            return SessionPool(self, workers,
                               shard_runtime=self.shard_runtime(workers))
        raise ValueError(f"unknown pool mode: {mode!r} "
                         "(expected 'threads' or 'processes')")

    def shard_runtime(self, workers: int) -> "ShardRuntime":
        """Create a process-shard runtime over the *current* registered
        tables (DDL after this point sends affected queries back to
        in-process execution).  The runtime is tracked so
        :meth:`close` releases its worker processes and shared-memory
        segments even if the caller forgets."""
        from .engine.shard import ShardRuntime
        runtime = ShardRuntime(self, workers)
        with self._session_lock:
            self._shard_runtimes.append(runtime)
        return runtime

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush_cache(self) -> int:
        return self.recycler.flush_cache()

    def invalidate_table(self, name: str) -> int:
        return self.recycler.invalidate_table(name)

    def invalidate_function(self, name: str) -> int:
        return self.recycler.invalidate_function(name)

    def maintain(self) -> dict[str, int]:
        """Run one budgeted maintenance cycle now (version-dead GC,
        size/idle truncate triggers, cached-benefit refresh) regardless
        of the background cadence."""
        return self.maintenance.run_once()

    def summary(self) -> dict:
        """Aggregate counters: the recycler view (queries, graph, cache,
        costs), background-maintenance counters under ``"maintenance"``
        (cycles, triggers incl. predicted-idle, truncate runs, nodes
        truncated, bytes reclaimed, GC nodes collected, budget-exhausted
        cycles, incremental stat merges, benefit refreshes),
        catalog/DDL counters under ``"catalog"`` (tables, functions, DDL
        clock, invalidation sweeps, entries evicted by DDL, in-flight
        producers aborted, version-rejected admissions), and plan
        canonicalization under ``"optimizer"`` (enabled flag,
        per-strategy rewrite counts, cost-gated reuse skips, and the
        recycler node match rate)."""
        summary = self.recycler.summary()
        maintenance = self.maintenance.stats.as_dict()
        # the catalog owns this one: appends maintain their statistics
        # incrementally, and ops wants to see that machinery engage
        maintenance["stats_incremental_merges"] = \
            self.catalog.stats_counters["incremental_merges"]
        summary["maintenance"] = maintenance
        ddl = self.recycler.ddl_stats
        summary["catalog"] = {
            "tables": len(self.catalog.table_names()),
            "functions": len(self.catalog.function_names()),
            "ddl_clock": self.catalog.ddl_clock,
            "invalidations": ddl["invalidations"],
            "entries_evicted": ddl["entries_evicted"],
            "inflight_aborted": ddl["inflight_aborted"],
            "version_rejected":
                self.recycler.cache.counters.version_rejected,
        }
        summary["optimizer"] = self.recycler.optimizer_summary()
        summary["service"] = self.service.summary()
        return summary

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop background maintenance and release every shard runtime
        this database created — worker processes are stopped and all
        shared-memory segments provably unlinked (idempotent).  Open
        sessions stay usable: a process-mode session whose runtime is
        gone falls back to in-process execution."""
        if self._closed:
            return
        self._closed = True
        self.maintenance.stop()
        with self._session_lock:
            runtimes = list(self._shard_runtimes)
            self._shard_runtimes.clear()
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
