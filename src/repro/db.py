"""The public database facade.

Ties the catalog, SQL front end, pipelined engine and recycler together::

    from repro import Database, RecyclerConfig

    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", table)
    result = db.sql("SELECT g, sum(v) AS s FROM t GROUP BY g")
    print(result.table.to_rows())
    print(db.summary())

Concurrency: ``db.sql`` may be called from any number of OS threads —
the recycler coordinates them internally.  For per-connection query logs
and in-flight result sharing (a query blocking on, then reusing, a
result a concurrent query is materializing) open explicit sessions::

    with db.pool(workers=4) as pool:
        results = pool.run(queries)       # four truly concurrent sessions

Queries are cooperatively cancellable: ``db.sql(..., timeout=s)`` arms
a per-query deadline, sessions add ``execute(..., deadline=)`` and a
cross-thread ``Session.cancel()``, and
``SessionPool.close(cancel_pending=True)`` aborts running queries
mid-execution — see ``docs/ARCHITECTURE.md`` for the cancellation flow.

Schema changes (``register_table`` & friends) are not synchronized with
in-progress queries; perform them between query batches, exactly as the
paper's update transactions do (cached dependents are invalidated).
"""

from __future__ import annotations

import threading

from .columnar.catalog import BinningSpec, Catalog, TableFunction
from .columnar.table import Schema, Table
from .engine.cancellation import CancellationToken
from .engine.cost import DEFAULT_COST_MODEL, CostModel
from .engine.executor import QueryResult
from .plan.logical import PlanNode, render_plan
from .plan.validate import validate_plan
from .recycler.config import RecyclerConfig
from .recycler.maintenance import MaintenanceManager
from .recycler.recycler import Recycler
from .session import Session, SessionPool
from .sql import sql_to_plan


class Database:
    """An in-memory analytical database with a recycling query engine."""

    def __init__(self, config: RecyclerConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 vector_size: int = 1024,
                 catalog: Catalog | None = None) -> None:
        #: ``catalog`` lets a prebuilt catalog (e.g. a generated workload
        #: substrate) be served directly.
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config or RecyclerConfig()
        self.recycler = Recycler(self.catalog, self.config,
                                 cost_model=cost_model,
                                 vector_size=vector_size)
        #: background truncate/refresh driver; its thread only starts
        #: when ``config.maintenance_interval_seconds`` is set, but
        #: ``maintain()`` applies the triggers on demand regardless.
        self.maintenance = MaintenanceManager(self.recycler)
        self.maintenance.start()
        self._session_counter = 0
        self._session_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table; replacing invalidates every
        cached result that depends on it."""
        if self.catalog.has_table(name):
            self.recycler.invalidate_table(name)
        self.catalog.register_table(name, table)

    def register_function(self, name: str, function: TableFunction,
                          schema: Schema,
                          invocation_cost: float = 0.0) -> None:
        self.catalog.register_function(name, function, schema,
                                       invocation_cost)

    def register_binning(self, table: str, spec: BinningSpec) -> None:
        """Declare how a column may be binned (enables the proactive
        cube-caching-with-binning strategy for that column)."""
        self.catalog.register_binning(table, spec)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def plan(self, sql: str) -> PlanNode:
        """Parse + bind + validate SQL into an optimized logical plan."""
        plan = sql_to_plan(sql, self.catalog)
        validate_plan(plan, self.catalog)
        return plan

    def sql(self, text: str, label: str = "",
            timeout: float | None = None) -> QueryResult:
        """Execute SQL text through the recycler.

        ``timeout`` (seconds) sets a query deadline: execution is
        checked per batch and aborts with
        :class:`~repro.errors.QueryTimeout` once the deadline passes,
        leaving no cache entry or in-flight registration behind.
        """
        return self.recycler.execute(
            self.plan(text), label=label,
            cancel_token=self._cancel_token(timeout))

    def execute(self, plan: PlanNode, label: str = "",
                timeout: float | None = None) -> QueryResult:
        """Execute a prebuilt logical plan through the recycler
        (``timeout`` as in :meth:`sql`)."""
        validate_plan(plan, self.catalog)
        return self.recycler.execute(
            plan, label=label, cancel_token=self._cancel_token(timeout))

    @staticmethod
    def _cancel_token(timeout: float | None) -> CancellationToken | None:
        return None if timeout is None \
            else CancellationToken(timeout=timeout)

    def explain(self, sql: str) -> str:
        """The optimized logical plan as a printable tree."""
        return render_plan(self.plan(sql))

    # ------------------------------------------------------------------
    # sessions & concurrency
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        """Open a new session (one logical connection).

        Sessions share this database's recycler: results one session
        materializes are reused by the others, and a session blocks on —
        then reuses — results a concurrent session is producing.
        """
        with self._session_lock:
            self._session_counter += 1
            return Session(self, self._session_counter)

    def pool(self, workers: int) -> SessionPool:
        """A pool of ``workers`` threads, each with its own session."""
        return SessionPool(self, workers)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush_cache(self) -> int:
        return self.recycler.flush_cache()

    def invalidate_table(self, name: str) -> int:
        return self.recycler.invalidate_table(name)

    def maintain(self) -> dict[str, int]:
        """Run one maintenance cycle now (size/idle truncate triggers +
        cached-benefit refresh) regardless of the background cadence."""
        return self.maintenance.run_once()

    def summary(self) -> dict:
        """Aggregate counters: the recycler view (queries, graph, cache,
        costs) plus background-maintenance counters under
        ``"maintenance"`` (cycles, triggers, truncate runs, nodes
        truncated, bytes reclaimed, benefit refreshes)."""
        summary = self.recycler.summary()
        summary["maintenance"] = self.maintenance.stats.as_dict()
        return summary

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop background maintenance (idempotent).  Open sessions stay
        usable — closing only shuts down what the database itself owns."""
        if self._closed:
            return
        self._closed = True
        self.maintenance.stop()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
