"""Network serving layer: wire protocol, asyncio server, blocking client.

The in-process pipeline (``Database`` → ``ExecutionService`` →
``Recycler``) is served over TCP here; see :mod:`repro.server.server`
for admission control and drain semantics, :mod:`repro.server.protocol`
for the frame format, and :mod:`repro.server.client` for the blocking
client used by tests, the load harness, and examples.
"""

from .client import ClientResult, ServerClient
from .protocol import MAX_FRAME_BYTES, ProtocolError
from .server import ReproServer

__all__ = [
    "ClientResult",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ReproServer",
    "ServerClient",
]
