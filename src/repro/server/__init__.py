"""Network serving layer: wire protocol, TCP + HTTP servers, clients.

The in-process pipeline (``Database`` → ``ExecutionService`` →
``Recycler``) is served remotely here, over two frontends that share
one core (:mod:`repro.server.base`): the length-prefixed-frame TCP
server (:mod:`repro.server.server`) and the HTTP/JSON server
(:mod:`repro.server.http`).  See :mod:`repro.server.protocol` for the
frame format (normative spec in ``docs/PROTOCOL.md``) and
:mod:`repro.server.client` for the blocking TCP client used by tests,
the load harness, and examples.
"""

from .client import ClientResult, ServerClient, StreamingResult
from .http import HttpClient, HttpServer
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from .server import ReproServer

__all__ = [
    "ClientResult",
    "HttpClient",
    "HttpServer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "ServerClient",
    "StreamingResult",
]
