"""The wire protocol: length-prefixed JSON frames, streamed in v2.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests are objects with an ``"op"`` key
(``hello`` / ``query`` / ``ping`` / ``stats`` / ``configure``);
responses carry ``"ok": true`` plus op-specific fields, or
``"ok": false`` with a typed error (``{"type": "QueryTimeout",
"message": ...}``) that the client maps back onto the
:mod:`repro.errors` hierarchy.  The normative specification (frame
grammar, handshake, streaming state machine, worked byte-level
example) lives in ``docs/PROTOCOL.md``.

**v1** (no handshake): a query result ships as one frame of
``columns`` / ``types`` (schema names and ``DataType`` names) plus
``rows`` (lists of plain Python values — numpy scalars are converted
via ``.item()``), and ``stats`` (the recycler's
:class:`~repro.recycler.recycler.QueryRecord` counters, so clients can
observe reuse: a warm query shows ``num_inserted == 0``).  The whole
result must fit under :data:`MAX_FRAME_BYTES`; larger results fail
with a typed :class:`~repro.errors.ResultTooLarge` error frame.

**v2** (after a ``hello`` handshake negotiates the version): a query
result becomes a ``result_header`` frame (schema, rowcount, stream id,
stats), zero or more bounded ``result_chunk`` frames (at most
``chunk_rows`` rows and about ``chunk_bytes`` encoded bytes each —
both far under the frame cap, so a 100 MB result streams without ever
building a 100 MB buffer), and a ``result_end`` trailer — or an
``error`` trailer if the stream aborts mid-way.  Chunk boundaries are
an encoding detail: reassembled rows are byte-identical to the v1
single frame.

Python's JSON handles non-finite floats natively (``NaN`` /
``Infinity``), so round-trips preserve FLOAT64 results exactly.

The framing functions here are transport-agnostic: the asyncio server
reads frames with :func:`read_frame_async`, the blocking client with
:func:`read_frame`, and the HTTP frontend reuses the same
header/chunk/end payload builders as NDJSON lines.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Iterator

from ..columnar.table import Table
from ..errors import ReproError, ServerError

#: frame header: unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: refuse absurd frames instead of allocating unbounded buffers.  On v1
#: this also caps the whole result (one frame); on v2 results are
#: chunked and only the (much smaller) per-chunk bound applies.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: the newest protocol this build speaks; ``hello`` negotiates
#: ``min(client, server)`` per connection, and a connection that never
#: says hello stays v1.
PROTOCOL_VERSION = 2

#: default streaming bounds: every ``result_chunk`` frame holds at most
#: this many rows / about this many encoded bytes (whichever is hit
#: first), keeping frames well under MAX_FRAME_BYTES and the event
#: loop's per-write work bounded.
DEFAULT_CHUNK_ROWS = 8192
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024


class ProtocolError(ServerError):
    """A malformed frame arrived (bad header, oversized, not JSON)."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_raw_frame(payload: bytes) -> bytes:
    """Length-prefix an already-encoded JSON payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte limit")
    return HEADER.pack(len(payload)) + payload


def encode_frame(message: dict) -> bytes:
    """One message as header + JSON payload bytes."""
    return encode_raw_frame(
        json.dumps(message, separators=(",", ":")).encode("utf-8"))


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def table_payload(table: Table) -> dict:
    """A result table as JSON-ready columns/types/rows."""
    return {
        "columns": list(table.schema.names),
        "types": [t.name for t in table.schema.types],
        "rows": [[value.item() if hasattr(value, "item") else value
                  for value in row] for row in table.to_rows()],
    }


def error_payload(exc: BaseException) -> dict:
    """A typed error frame; the client's :func:`raise_error` inverts
    this mapping.  On a v2 connection this doubles as the stream's
    ``error`` trailer (the ``kind`` key disambiguates)."""
    return {"ok": False, "kind": "error",
            "error": {"type": type(exc).__name__, "message": str(exc)}}


# ----------------------------------------------------------------------
# v2 streaming payloads
# ----------------------------------------------------------------------
def result_header_payload(stream_id: int, table: Table,
                          stats: dict | None = None) -> dict:
    """The ``result_header`` frame: schema, rowcount (always known —
    the engine materializes before serving), stream id, and the
    recycler's per-query counters."""
    payload = {
        "ok": True,
        "kind": "result_header",
        "stream": stream_id,
        "columns": list(table.schema.names),
        "types": [t.name for t in table.schema.types],
        "rowcount": table.num_rows,
    }
    if stats is not None:
        payload["stats"] = stats
    return payload


def result_end_payload(stream_id: int, *, chunks: int, rows: int) -> dict:
    """The ``result_end`` trailer: chunk/row totals the client checks
    against what it received (a truncated stream can then never be
    mistaken for a complete one)."""
    return {"ok": True, "kind": "result_end", "stream": stream_id,
            "chunks": chunks, "rows": rows}


def encode_result_chunk(stream_id: int, seq: int,
                        encoded_rows: list[bytes]) -> bytes:
    """Assemble one ``result_chunk`` frame payload from per-row JSON
    (each element of ``encoded_rows`` is one row already dumped as a
    compact JSON array, so the rows are serialized exactly once)."""
    head = (f'{{"kind":"result_chunk","stream":{stream_id},'
            f'"seq":{seq},"rows":[').encode("ascii")
    return head + b",".join(encoded_rows) + b"]}"


def iter_result_chunks(table: Table, *,
                       chunk_rows: int = DEFAULT_CHUNK_ROWS,
                       chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                       ) -> Iterator[list[bytes]]:
    """Yield the result as bounded lists of per-row JSON encodings.

    Every yielded list holds at most ``chunk_rows`` rows and about
    ``chunk_bytes`` encoded bytes (a chunk always holds at least one
    row, so a single row larger than ``chunk_bytes`` travels alone).
    Rows are encoded with the same value conversion as
    :func:`table_payload`, which is what makes reassembled v2 streams
    byte-identical to the v1 single frame.
    """
    chunk_rows = max(1, int(chunk_rows))
    chunk_bytes = max(1, int(chunk_bytes))
    dumps = json.dumps
    buffered: list[bytes] = []
    size = 0
    for row in table.iter_rows():
        encoded = dumps(
            [value.item() if hasattr(value, "item") else value
             for value in row],
            separators=(",", ":")).encode("utf-8")
        if buffered and (len(buffered) >= chunk_rows
                         or size + len(encoded) > chunk_bytes):
            yield buffered
            buffered = []
            size = 0
        buffered.append(encoded)
        size += len(encoded) + 1
    if buffered:
        yield buffered


# ----------------------------------------------------------------------
# error mapping (client side)
# ----------------------------------------------------------------------
def raise_error(error: dict) -> None:
    """Re-raise a server error frame as the matching library exception
    (by class name within the :mod:`repro.errors` hierarchy; unknown
    types arrive as :class:`~repro.errors.ServerError`)."""
    import repro.errors as errors_module
    error_type = str(error.get("type", "ServerError"))
    message = str(error.get("message", "server error"))
    cls = getattr(errors_module, error_type, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        if issubclass(cls, ServerError):
            raise cls(message, error_type=error_type)
        raise cls(message)
    raise ServerError(message, error_type=error_type)


# ----------------------------------------------------------------------
# blocking framing (client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def read_frame(sock: socket.socket) -> dict:
    (length,) = HEADER.unpack(_recv_exactly(sock, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the"
                            f" {MAX_FRAME_BYTES}-byte limit")
    return decode_payload(_recv_exactly(sock, length))


# ----------------------------------------------------------------------
# asyncio framing (server)
# ----------------------------------------------------------------------
async def read_frame_async(reader) -> dict:
    header = await reader.readexactly(HEADER.size)
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the"
                            f" {MAX_FRAME_BYTES}-byte limit")
    return decode_payload(await reader.readexactly(length))
