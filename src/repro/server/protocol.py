"""The wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests are objects with an ``"op"`` key
(``query`` / ``ping`` / ``stats`` / ``configure``); responses carry
``"ok": true`` plus op-specific fields, or ``"ok": false`` with a typed
error (``{"type": "QueryTimeout", "message": ...}``) that the client
maps back onto the :mod:`repro.errors` hierarchy.

Query results ship as ``columns`` / ``types`` (schema names and
``DataType`` names) plus ``rows`` (lists of plain Python values —
numpy scalars are converted via ``.item()``), and ``stats`` (the
recycler's :class:`~repro.recycler.recycler.QueryRecord` counters, so
clients can observe reuse: a warm query shows ``num_inserted == 0``).
Python's JSON handles non-finite floats natively (``NaN`` /
``Infinity``), so round-trips preserve FLOAT64 results exactly.

The framing functions here are transport-agnostic: the asyncio server
reads frames with :func:`read_frame_async`, the blocking client with
:func:`read_frame`.
"""

from __future__ import annotations

import json
import socket
import struct

from ..columnar.table import Table
from ..errors import ReproError, ServerError

#: frame header: unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: refuse absurd frames instead of allocating unbounded buffers.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ServerError):
    """A malformed frame arrived (bad header, oversized, not JSON)."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """One message as header + JSON payload bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte limit")
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def table_payload(table: Table) -> dict:
    """A result table as JSON-ready columns/types/rows."""
    return {
        "columns": list(table.schema.names),
        "types": [t.name for t in table.schema.types],
        "rows": [[value.item() if hasattr(value, "item") else value
                  for value in row] for row in table.to_rows()],
    }


def error_payload(exc: BaseException) -> dict:
    """A typed error frame; the client's :func:`raise_error` inverts
    this mapping."""
    return {"ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)}}


# ----------------------------------------------------------------------
# error mapping (client side)
# ----------------------------------------------------------------------
def raise_error(error: dict) -> None:
    """Re-raise a server error frame as the matching library exception
    (by class name within the :mod:`repro.errors` hierarchy; unknown
    types arrive as :class:`~repro.errors.ServerError`)."""
    import repro.errors as errors_module
    error_type = str(error.get("type", "ServerError"))
    message = str(error.get("message", "server error"))
    cls = getattr(errors_module, error_type, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        if issubclass(cls, ServerError):
            raise cls(message, error_type=error_type)
        raise cls(message)
    raise ServerError(message, error_type=error_type)


# ----------------------------------------------------------------------
# blocking framing (client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def read_frame(sock: socket.socket) -> dict:
    (length,) = HEADER.unpack(_recv_exactly(sock, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the"
                            f" {MAX_FRAME_BYTES}-byte limit")
    return decode_payload(_recv_exactly(sock, length))


# ----------------------------------------------------------------------
# asyncio framing (server)
# ----------------------------------------------------------------------
async def read_frame_async(reader) -> dict:
    header = await reader.readexactly(HEADER.size)
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the"
                            f" {MAX_FRAME_BYTES}-byte limit")
    return decode_payload(await reader.readexactly(length))
