"""An HTTP/1.1 JSON frontend over the same serving core as TCP.

Same :class:`~repro.exec_service.ExecutionService`, same admission
control, deadlines, tenant budgets, and graceful drain as
:class:`~repro.server.server.ReproServer` — only the wire format
differs, so a query is warm for HTTP clients the moment a TCP client
(or an in-process session) ran it, and vice versa.  Hand-rolled on
asyncio streams (no framework, no new dependencies); just enough
HTTP/1.1 for the three endpoints:

``POST /v1/query``
    Body ``{"sql": ..., "label"?, "timeout"?, "tenant"?}``.  The reply
    is a **chunked** ``application/x-ndjson`` stream whose lines are
    exactly the protocol-v2 frame payloads: one ``result_header``, then
    bounded ``result_chunk`` lines, then a ``result_end`` trailer (or
    an ``error`` trailer mid-stream) — ``curl -N`` shows rows as they
    ship, and a 100 MB result never exists as one buffer on either
    side.  Errors *before* the stream starts map onto status codes:
    503 (overloaded / draining), 504 (server-side query timeout), 400
    (bad SQL or malformed request), 500 (anything else), each with the
    typed JSON error payload as the body.

``GET /healthz``
    200 ``{"ok": true, ...}`` while serving; 503 once draining — load
    balancers drop the instance before drain cuts it off.

``GET /metrics``
    ``Database.summary()`` as JSON: recycler cache/graph state plus the
    per-frontend service counters (queries, reuse, streams).

Disconnect behaviour matches the TCP v2 path: while a query executes,
the loop watches the connection; a vanished client cancels the
producer's token at the next batch boundary and nothing is published
to the cache.  Pipelining is not supported (send one request per
connection at a time, as every mainstream HTTP client does).
"""

from __future__ import annotations

import asyncio
import json
from functools import partial

from ..engine.cancellation import CancellationToken
from ..errors import (QueryTimeout, ReproError, ServerError,
                      ServerOverloaded, ServerUnavailable)
from .base import ClientDisconnected, ServingBase
from .client import ClientResult, StreamingResult
from .protocol import (MAX_FRAME_BYTES, ProtocolError, error_payload,
                       raise_error)

#: request header block cap — nothing legitimate comes close.
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def jsonable(value):
    """Recursively coerce a summary structure into plain JSON types
    (numpy scalars via ``.item()``, tuples/sets to lists, non-string
    dict keys to strings)."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _status_for(exc: BaseException) -> int:
    """Map a pre-stream failure onto an HTTP status (mid-stream
    failures arrive as an ``error`` trailer line instead — the 200 is
    already on the wire)."""
    if isinstance(exc, (ServerOverloaded, ServerUnavailable)):
        return 503
    if isinstance(exc, QueryTimeout):
        return 504
    if isinstance(exc, ProtocolError):
        return 400
    if isinstance(exc, ReproError) and not isinstance(exc, ServerError):
        return 400
    return 500


class _BadRequest(Exception):
    """Malformed HTTP framing; the connection is answered 400/closed."""


class _HttpConnection:
    """Per-connection state (the serving core cancels ``tokens`` when
    the connection goes away)."""

    __slots__ = ("writer", "tokens", "_seq")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.tokens: set[CancellationToken] = set()
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


class HttpServer(ServingBase):
    """The HTTP/JSON frontend for one :class:`~repro.db.Database`."""

    frontend = "http"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _make_connection(self, writer) -> _HttpConnection:
        return _HttpConnection(writer)

    async def _handle_connection(self, connection: _HttpConnection,
                                 reader, writer) -> None:
        while True:
            try:
                request = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond(writer, 400,
                                    error_payload(ProtocolError(str(exc))),
                                    close=True)
                return
            except (ConnectionError, asyncio.IncompleteReadError,
                    ValueError):
                return
            if request is None:
                return
            method, path, headers, body = request
            keep_alive = headers.get("connection", "").lower() != "close"
            if not await self._route(connection, method, path, body,
                                     reader, writer):
                return
            if not keep_alive:
                return

    async def _read_request(self, reader):
        """Parse one request head + body; None on a clean EOF between
        requests (keep-alive connection closed by the client)."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _BadRequest("truncated header block")
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _BadRequest("header block too large")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length < 0 or length > MAX_FRAME_BYTES:
            raise _BadRequest("unreasonable Content-Length")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, connection, method: str, path: str,
                     body: bytes, reader, writer) -> bool:
        path = path.split("?", 1)[0]
        if path == "/v1/query":
            if method != "POST":
                return await self._respond(
                    writer, 405,
                    error_payload(ProtocolError("use POST /v1/query")))
            return await self._handle_query(connection, body, reader,
                                            writer)
        if path == "/healthz":
            if method != "GET":
                return await self._respond(
                    writer, 405,
                    error_payload(ProtocolError("use GET /healthz")))
            status = 503 if self._draining else 200
            return await self._respond(writer, status, {
                "ok": not self._draining, "draining": self._draining,
                "frontend": self.frontend})
        if path == "/metrics":
            if method != "GET":
                return await self._respond(
                    writer, 405,
                    error_payload(ProtocolError("use GET /metrics")))
            summary = await self._loop.run_in_executor(
                self._pool, lambda: jsonable(self.db.summary()))
            return await self._respond(writer, 200, summary)
        return await self._respond(
            writer, 404,
            error_payload(ProtocolError(f"no such endpoint: {path}")))

    async def _respond(self, writer, status: int, payload: dict,
                       close: bool = False) -> bool:
        """One complete (non-streamed) JSON response; returns False when
        the connection should drop."""
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                + ("Connection: close\r\n" if close else "")
                + "\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            return False
        return not close

    # ------------------------------------------------------------------
    # the query endpoint
    # ------------------------------------------------------------------
    async def _handle_query(self, connection: _HttpConnection,
                            body: bytes, reader, writer) -> bool:
        try:
            request = json.loads(body.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
            sql = request["sql"]
            if not isinstance(sql, str):
                raise ValueError("'sql' must be a string")
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return await self._respond(
                writer, 400,
                error_payload(ProtocolError(f"bad query body: {exc}")))
        rejected = self._admission_error()
        if rejected is not None:
            self._count("rejected")
            return await self._respond(writer, _status_for(rejected),
                                       error_payload(rejected))
        async with self._slot():
            return await self._execute(connection, request, sql, reader,
                                       writer)

    async def _execute(self, connection: _HttpConnection, request: dict,
                       sql: str, reader, writer) -> bool:
        timeout = request.get("timeout", self.default_timeout)
        token = CancellationToken(
            timeout=None if timeout is None else float(timeout))
        tenant = request.get("tenant")
        connection.tokens.add(token)
        try:
            call = partial(
                self.service.execute, sql, frontend=self.frontend,
                label=str(request.get("label", "")),
                producer_token=(self.frontend, id(connection),
                                connection.next_seq()),
                block_on_inflight=True, cancel_token=token,
                tenant=None if tenant is None else str(tenant))
            try:
                result = await self._run_query(call, token=token,
                                               reader=reader)
            except ClientDisconnected:
                return False
            except ReproError as exc:
                self._count_query_error(exc)
                return await self._respond(writer, _status_for(exc),
                                           error_payload(exc))
            except RuntimeError as exc:
                # pool shut down mid-drain: the query never started
                self._count("rejected")
                return await self._respond(
                    writer, 503,
                    error_payload(ServerUnavailable(str(exc))))
            self._count("served")
            head = ("HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Transfer-Encoding: chunked\r\n"
                    "\r\n").encode("latin-1")
            try:
                writer.write(head)
                await self._stream_result(
                    result, token=token,
                    stream_id=connection.next_seq(),
                    send=partial(self._send_ndjson_chunk, writer))
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                # client gone mid-stream: stop producing chunks
                self._count("stream_aborted")
                token.cancel()
                return False
            return True
        finally:
            connection.tokens.discard(token)

    @staticmethod
    async def _send_ndjson_chunk(writer, payload: bytes) -> None:
        """One frame payload as one NDJSON line inside one HTTP chunk
        (the drain is the per-chunk backpressure)."""
        line = payload + b"\n"
        writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
        await writer.drain()


# ----------------------------------------------------------------------
# blocking client
# ----------------------------------------------------------------------
class HttpClient:
    """A blocking client for :class:`HttpServer` built on
    :mod:`http.client` (stdlib only) — same surface as the TCP
    :class:`~repro.server.client.ServerClient` where it overlaps:
    ``query`` returns a :class:`~repro.server.client.ClientResult`,
    ``execute_stream`` a :class:`~repro.server.client.StreamingResult`
    over the NDJSON lines."""

    def __init__(self, host: str, port: int, *,
                 timeout: float | None = None) -> None:
        import http.client
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port,
                                                timeout=timeout)
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _get_json(self, path: str) -> tuple[int, dict]:
        if self._closed:
            raise ServerUnavailable("client is closed")
        try:
            self._conn.request("GET", path)
            response = self._conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        except (ConnectionError, OSError, EOFError) as exc:
            self._conn.close()
            raise ServerUnavailable(
                f"cannot reach http server at {self.host}:{self.port}:"
                f" {exc}") from exc
        return response.status, payload

    def healthz(self) -> dict:
        """The health endpoint's JSON (whatever the status code, so
        callers can observe draining)."""
        return self._get_json("/healthz")[1]

    def metrics(self) -> dict:
        """``Database.summary()`` as served by ``GET /metrics``."""
        status, payload = self._get_json("/metrics")
        if status != 200:
            raise_error(payload.get("error") or {})
        return payload

    def query(self, sql: str, *, label: str = "",
              timeout: float | None = None,
              tenant: str | None = None) -> ClientResult:
        """Execute ``sql``; the chunked NDJSON reply is reassembled
        into one :class:`ClientResult` (rows identical to TCP)."""
        stream = self.execute_stream(sql, label=label, timeout=timeout,
                                     tenant=tenant)
        rows = stream.fetchall()
        return ClientResult(columns=stream.columns, types=stream.types,
                            rows=rows, stats=stream.stats,
                            chunks=stream.chunks)

    def execute_stream(self, sql: str, *, label: str = "",
                       timeout: float | None = None,
                       tenant: str | None = None) -> StreamingResult:
        """POST the query and return once the ``result_header`` line
        arrives — rows then stream with bounded client-side memory.
        Closing the stream before exhaustion drops the connection,
        which cancels the server-side producer."""
        if self._closed:
            raise ServerUnavailable("client is closed")
        body = {"sql": sql}
        if label:
            body["label"] = label
        if timeout is not None:
            body["timeout"] = timeout
        if tenant is not None:
            body["tenant"] = tenant
        try:
            self._conn.request(
                "POST", "/v1/query",
                body=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"})
            response = self._conn.getresponse()
            if response.status != 200:
                payload = json.loads(response.read().decode("utf-8"))
                raise_error(payload.get("error") or {})
            header = json.loads(response.readline())
        except (ConnectionError, OSError, EOFError) as exc:
            self._conn.close()
            raise ServerUnavailable(
                f"cannot reach http server at {self.host}:{self.port}:"
                f" {exc}") from exc
        if not header.get("ok"):
            raise_error(header.get("error") or {})
        if header.get("kind") != "result_header":
            raise ServerError(
                f"expected a result_header line, got"
                f" {header.get('kind')!r}")

        def next_frame() -> dict:
            return json.loads(response.readline())

        # on_finish drains the chunked-body terminator so http.client
        # marks the response complete and keep-alive reuse works.
        return StreamingResult(header, next_frame, self._conn.close,
                               on_finish=response.read)
