"""A small blocking TCP client for :class:`~repro.server.ReproServer`.

One socket, one request at a time (the protocol is strictly
request/response per connection; open several clients for concurrency).
Errors come back typed: the server's error frames are re-raised as the
matching :mod:`repro.errors` class, so a query that times out on the
server raises :class:`~repro.errors.QueryTimeout` here exactly as it
would in process, and an admission reject raises
:class:`~repro.errors.ServerOverloaded`.

On connect the client sends a ``hello`` and negotiates protocol v2
(streamed results) when the server speaks it; against an older v1
server it falls back transparently.  :meth:`ServerClient.query` always
returns the fully assembled :class:`ClientResult` whatever the
negotiated version — chunking is invisible.
:meth:`ServerClient.execute_stream` instead exposes the stream as an
iterator of rows (:class:`StreamingResult`), so a 100 MB result can be
consumed with bounded client-side memory, or abandoned mid-way (closing
the stream closes the connection, which cancels the producer
server-side).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..errors import ServerError, ServerUnavailable
from .protocol import (PROTOCOL_VERSION, raise_error, read_frame,
                       write_frame)


@dataclass
class ClientResult:
    """A query result decoded from the wire: schema names/types, plain
    Python row tuples, and the recycler's per-query counters."""

    columns: list[str]
    types: list[str]
    rows: list[tuple]
    stats: dict = field(default_factory=dict)
    #: how many ``result_chunk`` frames carried the rows (0 on a v1
    #: single-frame reply) — observability for tests and benchmarks.
    chunks: int = 0

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class StreamingResult:
    """An iterator over a streamed query result.

    Yields one row tuple at a time; at any moment the client buffers at
    most one ``result_chunk`` worth of rows.  Schema (``columns`` /
    ``types``), ``rowcount``, and the recycler ``stats`` are available
    immediately (they travel in the ``result_header``), so time to
    first row does not depend on result size.

    The stream must be consumed or closed; it is a context manager::

        with client.execute_stream("SELECT ...") as stream:
            for row in stream:
                ...

    Closing before exhaustion abandons the stream by closing the
    underlying connection — the server notices and stops producing
    chunks.  A truncated stream can never be mistaken for a complete
    one: the trailer's chunk/row totals are checked against what
    arrived, and a missing trailer raises.

    The frame source is a callable returning decoded frame dicts, so
    the same class drives TCP length-prefixed frames and HTTP NDJSON
    lines.
    """

    def __init__(self, header: dict, next_frame: Callable[[], dict],
                 on_abort: Callable[[], None],
                 on_finish: Callable[[], None] | None = None) -> None:
        self.columns: list[str] = list(header.get("columns", []))
        self.types: list[str] = list(header.get("types", []))
        self.rowcount: int = int(header.get("rowcount", 0))
        self.stats: dict = dict(header.get("stats", {}))
        self.stream_id = header.get("stream")
        #: chunk count, filled in once the trailer arrives.
        self.chunks: int = 0
        self._next_frame = next_frame
        self._on_abort = on_abort
        self._on_finish = on_finish
        self._exhausted = False
        self._closed = False

    def __iter__(self) -> Iterator[tuple]:
        chunks = 0
        rows = 0
        while not self._exhausted:
            frame = self._next_frame()
            kind = frame.get("kind")
            if kind == "result_chunk":
                chunks += 1
                for row in frame.get("rows", []):
                    rows += 1
                    yield tuple(row)
            elif kind == "result_end":
                self._exhausted = True
                self.chunks = chunks
                if self._on_finish is not None:
                    self._on_finish()
                if (frame.get("chunks") != chunks
                        or frame.get("rows") != rows):
                    raise ServerError(
                        f"truncated stream: trailer promises"
                        f" {frame.get('chunks')} chunks /"
                        f" {frame.get('rows')} rows, received"
                        f" {chunks} / {rows}")
            elif not frame.get("ok"):
                # terminal error trailer: the stream is over
                self._exhausted = True
                if self._on_finish is not None:
                    self._on_finish()
                raise_error(frame.get("error") or {})
            else:
                self._exhausted = True
                raise ServerError(
                    f"unexpected frame mid-stream: {kind!r}")

    def fetchall(self) -> list[tuple]:
        """Drain the remainder into a list (convenience for tests)."""
        return list(self)

    def close(self) -> None:
        """Finish with the stream.  If it was not fully consumed, the
        underlying connection is closed to stop the producer."""
        if self._closed:
            return
        self._closed = True
        if not self._exhausted:
            self._on_abort()

    def __enter__(self) -> "StreamingResult":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServerClient:
    """Blocking client: ``query`` / ``execute_stream`` / ``ping`` /
    ``stats`` / ``configure``.

    Usable as a context manager::

        with ServerClient(host, port) as client:
            result = client.query("SELECT 1 AS x")
    """

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float | None = 10.0,
                 protocol: int = PROTOCOL_VERSION) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServerUnavailable(
                f"cannot reach server at {host}:{port}: {exc}") from exc
        # queries block until the server responds (or rejects).
        self._sock.settimeout(None)
        self._closed = False
        #: what the server advertised in the hello reply (empty on v1).
        self.server_limits: dict = {}
        self.protocol_version = 1
        if protocol >= 2:
            self._negotiate(protocol)

    def _negotiate(self, requested: int) -> None:
        """The hello handshake; an old server that rejects the op (or a
        weird one that answers without a version) leaves us on v1."""
        try:
            reply = self._request({"op": "hello", "version": requested})
        except ServerUnavailable:
            raise
        except ServerError:
            return
        try:
            self.protocol_version = max(1, int(reply.get("version", 1)))
        except (TypeError, ValueError):
            return
        self.server_limits = {
            k: reply[k] for k in ("chunk_rows", "chunk_bytes",
                                  "max_frame_bytes") if k in reply}

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _read(self) -> dict:
        try:
            return read_frame(self._sock)
        except (ConnectionError, OSError) as exc:
            self.close()
            raise ServerUnavailable(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ) from exc

    def _request(self, message: dict) -> dict:
        if self._closed:
            raise ServerUnavailable("client is closed")
        try:
            write_frame(self._sock, message)
        except (ConnectionError, OSError) as exc:
            self.close()
            raise ServerUnavailable(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ) from exc
        response = self._read()
        if not response.get("ok"):
            raise_error(response.get("error") or {})
        return response

    @staticmethod
    def _query_message(sql: str, label: str, timeout: float | None,
                      tenant: str | None) -> dict:
        message: dict = {"op": "query", "sql": sql}
        if label:
            message["label"] = label
        if timeout is not None:
            message["timeout"] = timeout
        if tenant is not None:
            message["tenant"] = tenant
        return message

    def query(self, sql: str, *, label: str = "",
              timeout: float | None = None,
              tenant: str | None = None) -> ClientResult:
        """Execute ``sql`` on the server and return the decoded result.

        ``timeout`` is enforced server-side (maps onto the query's
        CancellationToken; expiry raises
        :class:`~repro.errors.QueryTimeout` here).  On a v2 connection
        the reply arrives chunked and is reassembled here; rows are
        identical to a v1 single-frame reply.
        """
        response = self._request(
            self._query_message(sql, label, timeout, tenant))
        if response.get("kind") == "result_header":
            stream = self._stream_from_header(response)
            rows = stream.fetchall()
            return ClientResult(columns=stream.columns,
                                types=stream.types, rows=rows,
                                stats=stream.stats,
                                chunks=stream.chunks)
        return ClientResult(
            columns=list(response.get("columns", [])),
            types=list(response.get("types", [])),
            rows=[tuple(row) for row in response.get("rows", [])],
            stats=dict(response.get("stats", {})))

    def execute_stream(self, sql: str, *, label: str = "",
                       timeout: float | None = None,
                       tenant: str | None = None) -> StreamingResult:
        """Execute ``sql`` and iterate the result incrementally.

        Requires a protocol-v2 connection (the default against a
        current server).  Returns once the ``result_header`` arrives —
        before any rows — so large results start flowing immediately
        and the client never holds more than one chunk.  The connection
        is dedicated to the stream until it is exhausted or closed.
        """
        if self.protocol_version < 2:
            raise ServerError(
                "execute_stream needs protocol v2; this connection"
                " negotiated v1 (old server?)")
        response = self._request(
            self._query_message(sql, label, timeout, tenant))
        if response.get("kind") != "result_header":
            raise ServerError(
                f"expected a result_header frame, got"
                f" {response.get('kind')!r}")
        return self._stream_from_header(response)

    def _stream_from_header(self, header: dict) -> StreamingResult:
        return StreamingResult(header, self._read, self.close)

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        """Server admission counters plus the service-layer summary."""
        response = self._request({"op": "stats"})
        return {"server": response.get("stats", {}),
                "service": response.get("service", {})}

    def configure(self, *, deadline: float | None = None,
                  tenant: str | None = ...) -> None:
        """Set per-connection defaults: ``deadline`` (seconds of budget
        shared by everything that follows on this connection) and
        ``tenant`` (pass ``None`` explicitly to clear)."""
        message: dict = {"op": "configure"}
        if deadline is not None:
            message["deadline"] = deadline
        if tenant is not ...:
            message["tenant"] = tenant
        self._request(message)
