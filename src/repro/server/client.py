"""A small blocking TCP client for :class:`~repro.server.ReproServer`.

One socket, one request at a time (the protocol is strictly
request/response per connection; open several clients for concurrency).
Errors come back typed: the server's error frames are re-raised as the
matching :mod:`repro.errors` class, so a query that times out on the
server raises :class:`~repro.errors.QueryTimeout` here exactly as it
would in process, and an admission reject raises
:class:`~repro.errors.ServerOverloaded`.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from ..errors import ServerUnavailable
from .protocol import raise_error, read_frame, write_frame


@dataclass
class ClientResult:
    """A query result decoded from the wire: schema names/types, plain
    Python row tuples, and the recycler's per-query counters."""

    columns: list[str]
    types: list[str]
    rows: list[tuple]
    stats: dict = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class ServerClient:
    """Blocking client: ``query`` / ``ping`` / ``stats`` / ``configure``.

    Usable as a context manager::

        with ServerClient(host, port) as client:
            result = client.query("SELECT 1 AS x")
    """

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float | None = 10.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout)
        except OSError as exc:
            raise ServerUnavailable(
                f"cannot reach server at {host}:{port}: {exc}") from exc
        # queries block until the server responds (or rejects).
        self._sock.settimeout(None)
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, message: dict) -> dict:
        if self._closed:
            raise ServerUnavailable("client is closed")
        try:
            write_frame(self._sock, message)
            response = read_frame(self._sock)
        except (ConnectionError, OSError) as exc:
            self.close()
            raise ServerUnavailable(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ) from exc
        if not response.get("ok"):
            raise_error(response.get("error") or {})
        return response

    def query(self, sql: str, *, label: str = "",
              timeout: float | None = None,
              tenant: str | None = None) -> ClientResult:
        """Execute ``sql`` on the server and return the decoded result.

        ``timeout`` is enforced server-side (maps onto the query's
        CancellationToken; expiry raises
        :class:`~repro.errors.QueryTimeout` here).
        """
        message: dict = {"op": "query", "sql": sql}
        if label:
            message["label"] = label
        if timeout is not None:
            message["timeout"] = timeout
        if tenant is not None:
            message["tenant"] = tenant
        response = self._request(message)
        return ClientResult(
            columns=list(response.get("columns", [])),
            types=list(response.get("types", [])),
            rows=[tuple(row) for row in response.get("rows", [])],
            stats=dict(response.get("stats", {})))

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        """Server admission counters plus the service-layer summary."""
        response = self._request({"op": "stats"})
        return {"server": response.get("stats", {}),
                "service": response.get("service", {})}

    def configure(self, *, deadline: float | None = None,
                  tenant: str | None = ...) -> None:
        """Set per-connection defaults: ``deadline`` (seconds of budget
        shared by everything that follows on this connection) and
        ``tenant`` (pass ``None`` explicitly to clear)."""
        message: dict = {"op": "configure"}
        if deadline is not None:
            message["deadline"] = deadline
        if tenant is not ...:
            message["tenant"] = tenant
        self._request(message)
