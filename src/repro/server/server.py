"""The asyncio TCP server: many remote clients, one shared recycler.

The paper's "millions of users" setting (SkyServer) is many concurrent
clients whose queries meet in one recycler.  :class:`ReproServer` is
that front door: an asyncio TCP accept loop (run on a dedicated thread,
so it composes with blocking callers and tests) speaking the
length-prefixed JSON protocol of :mod:`.protocol`, executing queries on
a worker thread pool through the shared
:class:`~repro.exec_service.ExecutionService`.

**Admission control and backpressure.**  At most ``max_in_flight``
queries execute at once; up to ``max_queue`` more may wait for a slot.
A query arriving beyond that is *rejected immediately* with a typed
:class:`~repro.errors.ServerOverloaded` error frame — the server never
buffers unboundedly and never hangs, so an overloaded server stays
responsive (rejects cost microseconds).  During drain, new queries get
:class:`~repro.errors.ServerUnavailable`.

**Deadlines.**  A per-request ``timeout`` and a per-connection deadline
(``configure`` op, seconds of budget for everything that follows) map
onto one :class:`~repro.engine.cancellation.CancellationToken` — the
earlier bound wins, exactly the session semantics.  Client disconnect
cancels the connection's in-flight queries the same way.

**Tenancy.**  A connection may declare a tenant (per query or via
``configure``); the recycler charges whatever those queries materialize
against the tenant's cache byte budget
(:meth:`~repro.recycler.recycler.Recycler.set_tenant_budget`).

**Drain.**  ``stop()`` stops accepting, lets in-flight queries finish
inside ``drain_seconds``, then cancels stragglers — a graceful drain by
default, an abort when the budget is zero.
"""

from __future__ import annotations

import asyncio
import gc
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING

from ..engine.cancellation import CancellationToken
from ..errors import ReproError, ServerOverloaded, ServerUnavailable
from .protocol import (ProtocolError, encode_frame, error_payload,
                       read_frame_async, table_payload)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..db import Database


class ReproServer:
    """A TCP serving frontend for one :class:`~repro.db.Database`."""

    def __init__(self, db: "Database", host: str = "127.0.0.1",
                 port: int = 0, *, max_in_flight: int = 8,
                 max_queue: int = 16,
                 default_timeout: float | None = None,
                 tenant_budgets: dict[str, int] | None = None,
                 drain_seconds: float = 5.0) -> None:
        self.db = db
        self.service = db.service
        self.host = host
        self.port = port  # 0 = ephemeral; the real port is set on start
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        self.drain_seconds = drain_seconds
        for tenant, budget in (tenant_budgets or {}).items():
            db.recycler.set_tenant_budget(tenant, budget)

        self._pool = ThreadPoolExecutor(
            max_workers=max_in_flight, thread_name_prefix="repro-server")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopped = threading.Event()
        self._draining = False
        self._closed = False

        # admission state (single-threaded: only the loop mutates it)
        self._slots: asyncio.Semaphore | None = None
        self._waiters = 0
        self._active = 0
        self._idle = asyncio.Event()  # set while nothing executes
        self._connections: set["_Connection"] = set()

        self._stats_lock = threading.Lock()
        self._counters = {
            "served": 0, "rejected": 0, "errors": 0, "timeouts": 0,
            "cancelled": 0, "connections_total": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve on a dedicated event-loop thread; returns the
        bound ``(host, port)`` (the port is real even when constructed
        with the ephemeral port 0)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-server-loop", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        self.service.attach_server(self)
        return (self.host, self.port)

    def _run_loop(self) -> None:
        asyncio.run(self._serve())
        # Reap any connection stranded mid-accept by the listener close:
        # asyncio wraps an accepted socket in a transport on a later
        # tick, and when that tick lands after ``Server.close()`` the
        # half-built transport is abandoned in a reference cycle still
        # holding the fd — its client would block on a reply forever.
        # Collecting the cycle closes the socket, so a stranded client
        # sees EOF (→ ServerUnavailable) instead of hanging.
        gc.collect()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.max_in_flight)
        self._idle.set()
        self._shutdown = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        await self._shutdown.wait()
        # Flush in-flight accepts before closing the listener: a socket
        # the kernel handed over in this very iteration only gets its
        # transport (and our handler) on later ticks, and closing the
        # server first would strand it half-built — never read, never
        # closed.  A few ticks land those connections in handlers,
        # which then reject queries with a typed drain error.
        for _ in range(8):
            await asyncio.sleep(0)
        # stop accepting; existing connections stay up for the drain
        # (not Server.wait_closed(), which would await their departure)
        self._server.close()
        # drain: wait (bounded) for in-flight queries, then cancel
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=self.drain_seconds)
        except asyncio.TimeoutError:
            pass
        for connection in list(self._connections):
            connection.cancel_tokens()
            connection.writer.close()
        # close() only *schedules* connection_lost; if the loop exits
        # first, the accepted fd outlives it inside this process and a
        # client blocked on recv() for a reply never unblocks.  Await
        # the closes so no socket survives the loop.
        waiters = [connection.writer.wait_closed()
                   for connection in list(self._connections)]
        if waiters:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*waiters, return_exceptions=True),
                    timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        self._stopped.set()

    def stop(self) -> None:
        """Graceful drain: stop accepting, reject new queries, let
        in-flight queries finish within ``drain_seconds``, cancel the
        rest, close every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        loop = self._loop
        if loop is not None and self._thread is not None \
                and self._thread.is_alive():
            loop.call_soon_threadsafe(self._shutdown.set)
            self._stopped.wait(timeout=(self.drain_seconds or 0) + 10.0)
            self._thread.join(timeout=10.0)
        self.service.detach_server(self)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stats(self) -> dict[str, int]:
        """Admission/served counters plus live connection count (folded
        into ``Database.summary()["service"]`` while attached)."""
        with self._stats_lock:
            counters = dict(self._counters)
        counters["active_connections"] = len(self._connections)
        counters["in_flight"] = self._active
        return counters

    def _count(self, key: str, delta: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += delta

    # ------------------------------------------------------------------
    # connection handling (event-loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self._count("connections_total")
        try:
            while True:
                try:
                    request = await read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ProtocolError as exc:
                    await self._send(writer, error_payload(exc))
                    break
                response = await self._dispatch(connection, request)
                if not await self._send(writer, response):
                    break
        finally:
            self._connections.discard(connection)
            # client gone: abort whatever it still has executing, so a
            # dropped connection never pins an execution slot
            connection.cancel_tokens()
            writer.close()

    async def _send(self, writer, message: dict) -> bool:
        try:
            writer.write(encode_frame(message))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _dispatch(self, connection: "_Connection",
                        request: dict) -> dict:
        op = request.get("op")
        if op == "query":
            return await self._handle_query(connection, request)
        if op == "ping":
            return {"ok": True, "pong": True,
                    "draining": self._draining}
        if op == "stats":
            return {"ok": True, "stats": self.stats(),
                    "service": self.service.summary()}
        if op == "configure":
            return self._handle_configure(connection, request)
        return error_payload(
            ProtocolError(f"unknown op: {op!r}"))

    def _handle_configure(self, connection: "_Connection",
                          request: dict) -> dict:
        """Per-connection settings: ``deadline`` (seconds of budget for
        everything that follows on this connection, mapped onto every
        query's CancellationToken) and ``tenant`` (default tenant for
        subsequent queries)."""
        deadline = request.get("deadline")
        if deadline is not None:
            token = CancellationToken(timeout=float(deadline))
            connection.deadline = token.deadline
        if "tenant" in request:
            tenant = request.get("tenant")
            connection.tenant = None if tenant is None else str(tenant)
        return {"ok": True}

    async def _handle_query(self, connection: "_Connection",
                            request: dict) -> dict:
        # Admission control: a free slot admits immediately; a full
        # server with queue headroom waits; beyond that, typed reject.
        if self._draining:
            self._count("rejected")
            return error_payload(ServerUnavailable(
                "server is draining and accepts no new queries"))
        if self._slots.locked() and self._waiters >= self.max_queue:
            self._count("rejected")
            return error_payload(ServerOverloaded(
                f"server at capacity ({self.max_in_flight} in flight,"
                f" {self._waiters} queued)"))
        self._waiters += 1
        try:
            await self._slots.acquire()
        finally:
            self._waiters -= 1
        self._active += 1
        self._idle.clear()
        try:
            return await self._execute(connection, request)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            self._slots.release()

    async def _execute(self, connection: "_Connection",
                       request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str):
            return error_payload(ProtocolError("query needs 'sql' text"))
        timeout = request.get("timeout", self.default_timeout)
        token = CancellationToken(
            timeout=None if timeout is None else float(timeout),
            deadline=connection.deadline)
        tenant = request.get("tenant", connection.tenant)
        connection.tokens.add(token)
        try:
            result = await self._loop.run_in_executor(
                self._pool, partial(
                    self.service.execute, sql, frontend="server",
                    label=str(request.get("label", "")),
                    producer_token=("server", id(connection),
                                    connection.next_seq()),
                    block_on_inflight=True, cancel_token=token,
                    tenant=None if tenant is None else str(tenant)))
        except ReproError as exc:
            kind = type(exc).__name__
            if kind == "QueryTimeout":
                self._count("timeouts")
            elif kind == "QueryCancelled":
                self._count("cancelled")
            else:
                self._count("errors")
            return error_payload(exc)
        except RuntimeError as exc:
            # pool shut down mid-drain: the query never started
            self._count("rejected")
            return error_payload(ServerUnavailable(str(exc)))
        finally:
            connection.tokens.discard(token)
        self._count("served")
        record = result.record
        payload = {"ok": True, **table_payload(result.table)}
        if record is not None:
            payload["stats"] = {
                "query_id": record.query_id,
                "num_reused": record.num_reused,
                "num_materialized": record.num_materialized,
                "num_matched": record.num_matched,
                "num_inserted": record.num_inserted,
                "total_cost": record.total_cost,
                "stall_seconds": record.stall_seconds,
            }
        return payload


class _Connection:
    """Per-connection state the handler threads may touch."""

    __slots__ = ("writer", "deadline", "tenant", "tokens", "_seq")

    def __init__(self, writer) -> None:
        self.writer = writer
        #: absolute monotonic deadline every query inherits (configure).
        self.deadline: float | None = None
        #: default tenant for queries on this connection.
        self.tenant: str | None = None
        #: CancellationTokens of queries currently executing.
        self.tokens: set[CancellationToken] = set()
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def cancel_tokens(self) -> None:
        for token in list(self.tokens):
            token.cancel()
