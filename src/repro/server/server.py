"""The asyncio TCP server: many remote clients, one shared recycler.

The paper's "millions of users" setting (SkyServer) is many concurrent
clients whose queries meet in one recycler.  :class:`ReproServer` is
that front door: an asyncio TCP accept loop (run on a dedicated thread,
so it composes with blocking callers and tests) speaking the
length-prefixed JSON protocol of :mod:`.protocol`, executing queries on
a worker thread pool through the shared
:class:`~repro.exec_service.ExecutionService`.  Lifecycle, admission
control, drain, and the streaming driver live in
:class:`~repro.server.base.ServingBase`, shared with the HTTP frontend
(:mod:`repro.server.http`); this module is only the TCP wire format.

**Protocol versions.**  A connection that opens with a ``hello`` op
negotiates protocol v2: query replies become ``result_header`` /
``result_chunk``* / ``result_end`` streams with bounded frames (see
``docs/PROTOCOL.md``), backpressure via ``drain()``, and disconnect
detection while the query executes.  A connection that never says hello
speaks v1: one reply frame per query, and a result too large for the
64 MB frame cap fails with a typed
:class:`~repro.errors.ResultTooLarge` instead of an oversized frame.

**Admission control and backpressure.**  At most ``max_in_flight``
queries execute at once; up to ``max_queue`` more may wait for a slot.
A query arriving beyond that is *rejected immediately* with a typed
:class:`~repro.errors.ServerOverloaded` error frame — the server never
buffers unboundedly and never hangs, so an overloaded server stays
responsive (rejects cost microseconds).  During drain, new queries get
:class:`~repro.errors.ServerUnavailable`.

**Deadlines.**  A per-request ``timeout`` and a per-connection deadline
(``configure`` op, seconds of budget for everything that follows) map
onto one :class:`~repro.engine.cancellation.CancellationToken` — the
earlier bound wins, exactly the session semantics.  Client disconnect
cancels the connection's in-flight queries the same way — on v2 the
disconnect is noticed *while* the query executes (the loop watches the
socket), so an abandoned query stops at its next batch boundary and
publishes nothing.

**Tenancy.**  A connection may declare a tenant (per query or via
``configure``); the recycler charges whatever those queries materialize
against the tenant's cache byte budget
(:meth:`~repro.recycler.recycler.Recycler.set_tenant_budget`).

**Drain.**  ``stop()`` stops accepting, lets in-flight queries (and
in-flight streams) finish inside ``drain_seconds``, then cancels
stragglers — a graceful drain by default, an abort when the budget is
zero.
"""

from __future__ import annotations

import asyncio
from functools import partial

from ..engine.cancellation import CancellationToken
from ..errors import ReproError, ResultTooLarge, ServerUnavailable
from .base import ClientDisconnected, ServingBase, query_stats_payload
from .protocol import (HEADER, MAX_FRAME_BYTES, PROTOCOL_VERSION,
                       ProtocolError, encode_frame, error_payload,
                       read_frame_async, table_payload)


class ReproServer(ServingBase):
    """A TCP serving frontend for one :class:`~repro.db.Database`."""

    frontend = "server"

    # ------------------------------------------------------------------
    # connection handling (event-loop thread)
    # ------------------------------------------------------------------
    def _make_connection(self, writer) -> "_Connection":
        return _Connection(writer)

    async def _handle_connection(self, connection: "_Connection",
                                 reader, writer) -> None:
        while True:
            try:
                request = await read_frame_async(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            except ProtocolError as exc:
                await self._send(writer, error_payload(exc))
                break
            if not await self._dispatch(connection, request, reader,
                                        writer):
                break

    async def _send(self, writer, message: dict) -> bool:
        try:
            writer.write(encode_frame(message))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _dispatch(self, connection: "_Connection", request: dict,
                        reader, writer) -> bool:
        """Handle one request; returns False to drop the connection."""
        op = request.get("op")
        if op == "query":
            return await self._handle_query(connection, request, reader,
                                            writer)
        if op == "hello":
            return await self._send(
                writer, self._handle_hello(connection, request))
        if op == "ping":
            return await self._send(writer, {
                "ok": True, "pong": True, "draining": self._draining})
        if op == "stats":
            return await self._send(writer, {
                "ok": True, "stats": self.stats(),
                "service": self.service.summary()})
        if op == "configure":
            return await self._send(
                writer, self._handle_configure(connection, request))
        return await self._send(
            writer, error_payload(ProtocolError(f"unknown op: {op!r}")))

    def _handle_hello(self, connection: "_Connection",
                      request: dict) -> dict:
        """Version negotiation: the connection speaks
        ``min(client, server)`` from here on (v2 enables streaming
        replies); the reply also advertises the server's streaming
        bounds so clients can size their buffers."""
        try:
            requested = int(request.get("version", 1))
        except (TypeError, ValueError):
            return error_payload(ProtocolError("bad hello version"))
        connection.version = max(1, min(requested, PROTOCOL_VERSION))
        return {"ok": True, "version": connection.version,
                "chunk_rows": self.chunk_rows,
                "chunk_bytes": self.chunk_bytes,
                "max_frame_bytes": MAX_FRAME_BYTES}

    def _handle_configure(self, connection: "_Connection",
                          request: dict) -> dict:
        """Per-connection settings: ``deadline`` (seconds of budget for
        everything that follows on this connection, mapped onto every
        query's CancellationToken) and ``tenant`` (default tenant for
        subsequent queries)."""
        deadline = request.get("deadline")
        if deadline is not None:
            token = CancellationToken(timeout=float(deadline))
            connection.deadline = token.deadline
        if "tenant" in request:
            tenant = request.get("tenant")
            connection.tenant = None if tenant is None else str(tenant)
        return {"ok": True}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    async def _handle_query(self, connection: "_Connection",
                            request: dict, reader, writer) -> bool:
        # Admission control: a free slot admits immediately; a full
        # server with queue headroom waits; beyond that, typed reject.
        rejected = self._admission_error()
        if rejected is not None:
            self._count("rejected")
            return await self._send(writer, error_payload(rejected))
        async with self._slot():
            return await self._execute(connection, request, reader,
                                       writer)

    async def _execute(self, connection: "_Connection", request: dict,
                       reader, writer) -> bool:
        sql = request.get("sql")
        if not isinstance(sql, str):
            return await self._send(
                writer, error_payload(ProtocolError(
                    "query needs 'sql' text")))
        timeout = request.get("timeout", self.default_timeout)
        token = CancellationToken(
            timeout=None if timeout is None else float(timeout),
            deadline=connection.deadline)
        tenant = request.get("tenant", connection.tenant)
        streaming = connection.version >= 2
        connection.tokens.add(token)
        try:
            call = partial(
                self.service.execute, sql, frontend=self.frontend,
                label=str(request.get("label", "")),
                producer_token=(self.frontend, id(connection),
                                connection.next_seq()),
                block_on_inflight=True, cancel_token=token,
                tenant=None if tenant is None else str(tenant))
            try:
                result = await self._run_query(
                    call, token=token,
                    reader=reader if streaming else None)
            except ClientDisconnected:
                return False
            except ReproError as exc:
                self._count_query_error(exc)
                return await self._send(writer, error_payload(exc))
            except RuntimeError as exc:
                # pool shut down mid-drain: the query never started
                self._count("rejected")
                return await self._send(
                    writer, error_payload(ServerUnavailable(str(exc))))
            self._count("served")
            if not streaming:
                return await self._reply_single_frame(writer, result)
            try:
                await self._stream_result(
                    result, token=token, stream_id=connection.next_seq(),
                    send=partial(self._send_frame, writer))
            except (ConnectionError, RuntimeError):
                # client gone mid-stream: stop producing chunks
                self._count("stream_aborted")
                token.cancel()
                return False
            return True
        finally:
            connection.tokens.discard(token)

    async def _reply_single_frame(self, writer, result) -> bool:
        """The v1 reply: the whole result in one frame, encoded off the
        event loop; a result over the frame cap fails typed (v2 streams
        it instead)."""
        payload = {"ok": True, **table_payload(result.table)}
        stats = query_stats_payload(result.record)
        if stats is not None:
            payload["stats"] = stats

        def encode() -> bytes:
            try:
                return encode_frame(payload)
            except ProtocolError as exc:
                return encode_frame(error_payload(ResultTooLarge(
                    f"result does not fit one v1 frame ({exc});"
                    f" reconnect with a protocol-v2 client to stream"
                    f" it")))

        frame = await self._loop.run_in_executor(self._pool, encode)
        try:
            writer.write(frame)
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _send_frame(self, writer, payload: bytes) -> None:
        """Streaming send: frame-wrap one encoded payload and drain
        (the drain is the per-chunk backpressure)."""
        writer.write(HEADER.pack(len(payload)) + payload)
        await writer.drain()


class _Connection:
    """Per-connection state the handler threads may touch."""

    __slots__ = ("writer", "version", "deadline", "tenant", "tokens",
                 "_seq")

    def __init__(self, writer) -> None:
        self.writer = writer
        #: negotiated protocol version (1 until a ``hello`` arrives).
        self.version = 1
        #: absolute monotonic deadline every query inherits (configure).
        self.deadline: float | None = None
        #: default tenant for queries on this connection.
        self.tenant: str | None = None
        #: CancellationTokens of queries currently executing.
        self.tokens: set[CancellationToken] = set()
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def cancel_tokens(self) -> None:
        for token in list(self.tokens):
            token.cancel()
