"""The shared serving core: lifecycle, admission, drain, streaming.

The TCP frontend (:class:`~repro.server.server.ReproServer`) and the
HTTP/JSON frontend (:class:`~repro.server.http.HttpServer`) are two
wire formats over the same machinery; :class:`ServingBase` owns
everything that must behave identically whichever port a client picks:

* **lifecycle** — an asyncio accept loop on a dedicated thread, a
  worker thread pool for the blocking execution calls, and the
  graceful-drain shutdown sequence (stop accepting, bounded wait for
  in-flight work, cancel stragglers, await every connection's close);
* **admission control** — at most ``max_in_flight`` queries execute at
  once, up to ``max_queue`` more wait; beyond that a typed
  :class:`~repro.errors.ServerOverloaded` reject, and during drain a
  typed :class:`~repro.errors.ServerUnavailable`.  A streaming reply
  holds its admission slot until the trailer is written, so drain
  accounting covers bytes-in-flight, not just queries-in-flight;
* **disconnect-aware execution** — while a query executes on the
  worker pool, the event loop watches the connection for EOF (v2 and
  HTTP forbid pipelining, so any inbound byte mid-query is a protocol
  violation); a vanished client cancels the query's
  :class:`~repro.engine.cancellation.CancellationToken`, the producer
  aborts at its next batch boundary, and the recycler's abandon path
  guarantees no cache entry is published for it;
* **streaming** — one driver turns a materialized result into a
  ``result_header`` / ``result_chunk``* / ``result_end`` sequence with
  per-chunk serialization pushed onto the worker pool (the event loop
  never JSON-encodes more than it writes) and backpressure via the
  transport's ``drain()`` between frames.

Subclasses implement ``_handle_connection`` (their wire format) and set
``frontend`` (the :class:`~repro.exec_service.ExecutionService`
statistics label).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING

from ..errors import (QueryCancelled, QueryTimeout, ServerOverloaded,
                      ServerUnavailable)
from .protocol import (DEFAULT_CHUNK_BYTES, DEFAULT_CHUNK_ROWS,
                       encode_result_chunk, error_payload,
                       iter_result_chunks, result_end_payload,
                       result_header_payload)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..db import Database


class ClientDisconnected(Exception):
    """Internal: the client vanished (or spoke out of turn) while its
    query executed or streamed — the handler closes the connection."""


def query_stats_payload(record) -> dict | None:
    """The recycler's per-query counters as a wire-ready dict (shared
    by the v1 single frame, the v2 ``result_header``, and HTTP)."""
    if record is None:
        return None
    return {
        "query_id": record.query_id,
        "num_reused": record.num_reused,
        "num_materialized": record.num_materialized,
        "num_matched": record.num_matched,
        "num_inserted": record.num_inserted,
        "total_cost": record.total_cost,
        "stall_seconds": record.stall_seconds,
    }


class ServingBase:
    """Shared lifecycle + admission + streaming for serving frontends."""

    #: the per-frontend statistics label in
    #: ``Database.summary()["service"]["frontends"]``.
    frontend = "server"

    def __init__(self, db: "Database", host: str = "127.0.0.1",
                 port: int = 0, *, max_in_flight: int = 8,
                 max_queue: int = 16,
                 default_timeout: float | None = None,
                 tenant_budgets: dict[str, int] | None = None,
                 drain_seconds: float = 5.0,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        self.db = db
        self.service = db.service
        self.host = host
        self.port = port  # 0 = ephemeral; the real port is set on start
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        self.drain_seconds = drain_seconds
        #: streaming bounds: every result_chunk holds at most this many
        #: rows / about this many encoded bytes (whichever is first).
        self.chunk_rows = chunk_rows
        self.chunk_bytes = chunk_bytes
        for tenant, budget in (tenant_budgets or {}).items():
            db.recycler.set_tenant_budget(tenant, budget)

        self._pool = ThreadPoolExecutor(
            max_workers=max_in_flight, thread_name_prefix="repro-server")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopped = threading.Event()
        self._draining = False
        self._closed = False

        # admission state (single-threaded: only the loop mutates it)
        self._slots: asyncio.Semaphore | None = None
        self._waiters = 0
        self._active = 0
        self._idle = asyncio.Event()  # set while nothing executes
        self._connections: set[object] = set()

        self._stats_lock = threading.Lock()
        self._counters = {
            "served": 0, "rejected": 0, "errors": 0, "timeouts": 0,
            "cancelled": 0, "connections_total": 0,
            "streams": 0, "stream_chunks": 0, "stream_aborted": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve on a dedicated event-loop thread; returns the
        bound ``(host, port)`` (the port is real even when constructed
        with the ephemeral port 0)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name=f"repro-{self.frontend}-loop",
            daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        self.service.attach_server(self)
        return (self.host, self.port)

    def _run_loop(self) -> None:
        asyncio.run(self._serve())
        # Reap any connection stranded mid-accept by the listener close:
        # asyncio wraps an accepted socket in a transport on a later
        # tick, and when that tick lands after ``Server.close()`` the
        # half-built transport is abandoned in a reference cycle still
        # holding the fd — its client would block on a reply forever.
        # Collecting the cycle closes the socket, so a stranded client
        # sees EOF (→ ServerUnavailable) instead of hanging.
        gc.collect()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.max_in_flight)
        self._idle.set()
        self._shutdown = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._accept, self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        await self._shutdown.wait()
        # Flush in-flight accepts before closing the listener: a socket
        # the kernel handed over in this very iteration only gets its
        # transport (and our handler) on later ticks, and closing the
        # server first would strand it half-built — never read, never
        # closed.  A few ticks land those connections in handlers,
        # which then reject queries with a typed drain error.
        for _ in range(8):
            await asyncio.sleep(0)
        # stop accepting; existing connections stay up for the drain
        # (not Server.wait_closed(), which would await their departure)
        self._server.close()
        # drain: wait (bounded) for in-flight queries, then cancel
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=self.drain_seconds)
        except asyncio.TimeoutError:
            pass
        for connection in list(self._connections):
            self._cancel_connection(connection)
            connection.writer.close()
        # close() only *schedules* connection_lost; if the loop exits
        # first, the accepted fd outlives it inside this process and a
        # client blocked on recv() for a reply never unblocks.  Await
        # the closes so no socket survives the loop.
        waiters = [connection.writer.wait_closed()
                   for connection in list(self._connections)]
        if waiters:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*waiters, return_exceptions=True),
                    timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        self._stopped.set()

    async def _accept(self, reader, writer) -> None:
        connection = self._make_connection(writer)
        self._connections.add(connection)
        self._count("connections_total")
        try:
            await self._handle_connection(connection, reader, writer)
        finally:
            self._connections.discard(connection)
            # client gone: abort whatever it still has executing, so a
            # dropped connection never pins an execution slot
            self._cancel_connection(connection)
            writer.close()

    def stop(self) -> None:
        """Graceful drain: stop accepting, reject new queries, let
        in-flight queries finish within ``drain_seconds``, cancel the
        rest, close every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        loop = self._loop
        if loop is not None and self._thread is not None \
                and self._thread.is_alive():
            loop.call_soon_threadsafe(self._shutdown.set)
            self._stopped.wait(timeout=(self.drain_seconds or 0) + 10.0)
            self._thread.join(timeout=10.0)
        self.service.detach_server(self)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ServingBase":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # what subclasses provide
    # ------------------------------------------------------------------
    def _make_connection(self, writer) -> object:
        """Per-connection state; must expose ``writer``, a ``tokens``
        set of live CancellationTokens, and ``next_seq()``."""
        raise NotImplementedError

    async def _handle_connection(self, connection, reader,
                                 writer) -> None:
        """The wire format: read requests, dispatch, write replies."""
        raise NotImplementedError

    def _cancel_connection(self, connection) -> None:
        for token in list(connection.tokens):
            token.cancel()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Admission/served/streaming counters plus live connection
        count (folded into ``Database.summary()["service"]`` while
        attached)."""
        with self._stats_lock:
            counters = dict(self._counters)
        counters["active_connections"] = len(self._connections)
        counters["in_flight"] = self._active
        return counters

    def _count(self, key: str, delta: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += delta

    def _count_query_error(self, exc: BaseException) -> None:
        kind = type(exc).__name__
        if kind == "QueryTimeout":
            self._count("timeouts")
        elif kind == "QueryCancelled":
            self._count("cancelled")
        else:
            self._count("errors")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admission_error(self) -> Exception | None:
        """The typed reject for the current admission state, or None
        when the query may wait for (or take) a slot."""
        if self._draining:
            return ServerUnavailable(
                "server is draining and accepts no new queries")
        if self._slots.locked() and self._waiters >= self.max_queue:
            return ServerOverloaded(
                f"server at capacity ({self.max_in_flight} in flight,"
                f" {self._waiters} queued)")
        return None

    @contextlib.asynccontextmanager
    async def _slot(self):
        """Hold one execution slot; the ``_idle`` event drives drain."""
        self._waiters += 1
        try:
            await self._slots.acquire()
        finally:
            self._waiters -= 1
        self._active += 1
        self._idle.clear()
        try:
            yield
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            self._slots.release()

    # ------------------------------------------------------------------
    # disconnect-aware execution
    # ------------------------------------------------------------------
    async def _run_query(self, call, *, token, reader=None):
        """Run the blocking service ``call`` on the worker pool.

        With ``reader`` given (v2 / HTTP — protocols that forbid
        pipelining), the event loop concurrently watches the connection:
        any inbound event while the query runs means the client hung up
        (EOF) or broke protocol, so the query's token is cancelled, the
        producer unwinds through the recycler's abandon path (no cache
        publish), and :class:`ClientDisconnected` tells the handler to
        drop the connection.
        """
        future = asyncio.ensure_future(
            self._loop.run_in_executor(self._pool, call))
        if reader is None:
            return await future
        watcher = self._loop.create_task(self._watch_disconnect(reader))
        try:
            await asyncio.wait({future, watcher},
                               return_when=asyncio.FIRST_COMPLETED)
            if future.done():
                return future.result()
            # the client vanished mid-execution: stop the producer
            token.cancel()
            try:
                await future
            except Exception:
                pass
            self._count("cancelled")
            raise ClientDisconnected
        finally:
            # await the cancellation: until it lands, the watcher still
            # owns the reader and the next frame read would collide
            watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await watcher

    @staticmethod
    async def _watch_disconnect(reader) -> bytes:
        try:
            return await reader.read(1)
        except (ConnectionError, OSError):
            return b""

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    async def _stream_result(self, result, *, token, send,
                             stream_id: int) -> None:
        """Drive one streamed reply: ``result_header``, bounded
        ``result_chunk`` frames, ``result_end`` (or an ``error``
        trailer if the token cancels mid-stream).

        ``send`` is the transport's async "write one payload and
        drain" callable — frame-wrapped on TCP, chunk-wrapped NDJSON on
        HTTP; its ``drain()`` is the backpressure, so a slow consumer
        throttles the producer instead of growing a server-side buffer.
        Chunk serialization runs on the worker pool: the event loop
        only ever holds one encoded chunk.  A ConnectionError from
        ``send`` propagates to the caller (client gone mid-stream).
        """
        table = result.table
        header = result_header_payload(
            stream_id, table, query_stats_payload(result.record))
        await send(json.dumps(header, separators=(",", ":"))
                   .encode("utf-8"))
        chunks = 0
        rows = 0
        iterator = iter_result_chunks(table, chunk_rows=self.chunk_rows,
                                      chunk_bytes=self.chunk_bytes)
        while True:
            if token is not None and (token.cancelled or token.expired):
                exc = QueryTimeout("stream deadline expired") \
                    if token.expired \
                    else QueryCancelled("stream cancelled")
                trailer = dict(error_payload(exc), stream=stream_id)
                await send(json.dumps(trailer, separators=(",", ":"))
                           .encode("utf-8"))
                self._count("stream_aborted")
                return
            encoded_rows = await self._loop.run_in_executor(
                self._pool, partial(next, iterator, None))
            if encoded_rows is None:
                break
            await send(encode_result_chunk(stream_id, chunks,
                                           encoded_rows))
            chunks += 1
            rows += len(encoded_rows)
        trailer = result_end_payload(stream_id, chunks=chunks, rows=rows)
        await send(json.dumps(trailer, separators=(",", ":"))
                   .encode("utf-8"))
        self._count("streams")
        self._count("stream_chunks", chunks)
        self.service.account_stream(self.frontend, chunks=chunks,
                                    rows=rows)
