"""Admit-everything recycler for the operator-at-a-time baseline.

Models the MonetDB recycler of Ivanova et al. [10] as the paper describes
it (Sections I, V):

* intermediates are already materialized by the execution paradigm, so
  **every** result is admitted while space lasts — there is no
  materialization cost to weigh;
* matching happens directly on cached (sub)plans — there is no recycler
  graph, so an intermediate can only be reused when the whole subtree
  fingerprint matches, and all intermediates leading to a result must be
  kept for downstream reuse ("it needs to keep all intermediates that
  lead to a result");
* when the cache is full, entries are evicted in increasing
  ``cost * refs / size`` order until the newcomer fits; a newcomer that
  cannot beat the residents is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..columnar.table import Table


@dataclass
class MatEntry:
    """One cached intermediate of the baseline recycler."""

    fingerprint: tuple
    table: Table
    cost: float
    size: int
    refs: int = 0
    last_used: int = 0

    @property
    def benefit(self) -> float:
        return self.cost * max(self.refs, 1) / max(self.size, 1)


class MatRecycler:
    """Admit-everything cache keyed by plan fingerprints."""

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self.entries: dict[tuple, MatEntry] = {}
        self.used = 0
        self.clock = 0
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0
        self.hits = 0

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: tuple) -> Table | None:
        entry = self.entries.get(fingerprint)
        if entry is None:
            return None
        self.clock += 1
        entry.refs += 1
        entry.last_used = self.clock
        self.hits += 1
        return entry.table

    def admit(self, fingerprint: tuple, table: Table, cost: float) -> bool:
        if fingerprint in self.entries:
            return True
        size = table.nbytes()
        if self.capacity is not None and size > self.capacity:
            self.rejected += 1
            return False
        entry = MatEntry(fingerprint=fingerprint, table=table, cost=cost,
                         size=size)
        if self.capacity is not None:
            if not self._make_room(entry):
                self.rejected += 1
                return False
        self.entries[fingerprint] = entry
        self.used += size
        self.admitted += 1
        return True

    def _make_room(self, newcomer: MatEntry) -> bool:
        assert self.capacity is not None
        if self.used + newcomer.size <= self.capacity:
            return True
        victims = sorted(self.entries.values(), key=lambda e: e.benefit)
        freed = 0
        chosen = []
        for victim in victims:
            if victim.benefit >= newcomer.benefit:
                return False
            chosen.append(victim)
            freed += victim.size
            if self.used - freed + newcomer.size <= self.capacity:
                for v in chosen:
                    self._evict(v)
                return True
        return False

    def _evict(self, entry: MatEntry) -> None:
        del self.entries[entry.fingerprint]
        self.used -= entry.size
        self.evicted += 1

    # ------------------------------------------------------------------
    def flush(self) -> int:
        count = len(self.entries)
        self.entries.clear()
        self.used = 0
        return count

    def __len__(self) -> int:
        return len(self.entries)
