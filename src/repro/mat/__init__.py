"""Operator-at-a-time (MonetDB-style) baseline engine and recycler."""

from .engine import MatQueryResult, MaterializingEngine
from .recycler import MatEntry, MatRecycler

__all__ = ["MatEntry", "MatQueryResult", "MatRecycler",
           "MaterializingEngine"]
