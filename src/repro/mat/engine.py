"""Operator-at-a-time execution engine (the MonetDB-style baseline).

The paper contrasts its pipelined recycler with the MonetDB recycler of
Ivanova et al. [10], whose execution paradigm materializes **every**
intermediate result as a by-product.  This engine reproduces that
paradigm over the same data and operators:

* each plan node is evaluated bottom-up to a fully materialized
  :class:`~repro.columnar.table.Table`;
* every node charges, on top of the operator work itself, an explicit
  materialization write cost and a materialized-input read cost — the
  inherent overhead of operator-at-a-time execution;
* intermediates are handed to a :class:`~repro.mat.recycler.MatRecycler`
  (when attached), which — unlike the paper's recycler — admits
  *everything* and matches directly on cached plans.

The operator implementations are shared with the pipelined engine: a node
is executed by compiling it against cached-table leaves, which keeps the
two engines semantically identical by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..columnar.catalog import Catalog
from ..columnar.table import Table
from ..engine.cost import DEFAULT_COST_MODEL, CostModel
from ..engine.executor import execute_plan
from ..plan.logical import CachedScan, PlanNode, plan_fingerprint
from .recycler import MatRecycler

#: cost units charged per tuple written to / read from an intermediate.
MAT_WRITE_TUPLE = 0.3
MAT_WRITE_BYTE = 0.002
MAT_READ_TUPLE = 0.15


@dataclass
class _TableHandle:
    """Adapter giving a bare Table the ``.table`` attribute CachedScan
    leaves expect."""

    table: Table


@dataclass
class MatQueryResult:
    """Result + statistics of one operator-at-a-time execution."""

    table: Table
    total_cost: float
    wall_seconds: float
    nodes_executed: int = 0
    nodes_reused: int = 0
    intermediates_bytes: int = 0


class MaterializingEngine:
    """MonetDB-style executor with optional admit-everything recycling."""

    def __init__(self, catalog: Catalog,
                 recycler: MatRecycler | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.catalog = catalog
        self.recycler = recycler
        self.cost_model = cost_model

    def execute(self, plan: PlanNode) -> MatQueryResult:
        started = time.perf_counter()
        state = _RunState()
        table = self._evaluate(plan, state, is_root=True)
        return MatQueryResult(
            table=table,
            total_cost=state.cost,
            wall_seconds=time.perf_counter() - started,
            nodes_executed=state.executed,
            nodes_reused=state.reused,
            intermediates_bytes=state.intermediate_bytes)

    # ------------------------------------------------------------------
    def _evaluate(self, node: PlanNode, state: "_RunState",
                  is_root: bool = False) -> Table:
        fingerprint = plan_fingerprint(node)
        if self.recycler is not None:
            cached = self.recycler.lookup(fingerprint)
            if cached is not None:
                state.reused += 1
                state.cost += cached.num_rows * MAT_READ_TUPLE
                return cached

        child_tables = [self._evaluate(child, state)
                        for child in node.children]
        table, op_cost = self._run_operator(node, child_tables)
        state.executed += 1
        write_cost = table.num_rows * MAT_WRITE_TUPLE \
            + table.nbytes() * MAT_WRITE_BYTE
        read_cost = sum(t.num_rows for t in child_tables) * MAT_READ_TUPLE
        state.cost += op_cost + write_cost + read_cost
        state.intermediate_bytes += table.nbytes()

        if self.recycler is not None:
            self.recycler.admit(fingerprint, table,
                                cost=op_cost + write_cost + read_cost)
        return table

    def _run_operator(self, node: PlanNode,
                      child_tables: list[Table]) -> tuple[Table, float]:
        """Execute a single operator over materialized inputs by reusing
        the pipelined operator implementations."""
        if not node.children:
            result = execute_plan(node, self.catalog,
                                  cost_model=self.cost_model)
            return result.table, result.stats.total_cost
        leaves = [
            CachedScan(_TableHandle(table), table.schema,
                       label=f"mat-input-{i}")
            for i, table in enumerate(child_tables)
        ]
        single = node.with_children(leaves)
        result = execute_plan(single, self.catalog,
                              cost_model=self.cost_model)
        # The CachedScan emission cost is the read cost, which this engine
        # charges explicitly; strip it out of the operator cost.
        return result.table, max(
            result.stats.total_cost - result.stats.reuse_cost, 0.0)


@dataclass
class _RunState:
    cost: float = 0.0
    executed: int = 0
    reused: int = 0
    intermediate_bytes: int = 0
